// Package fastsnap implements an atomic snapshot object whose SCAN
// completes in a single collect round under low contention, in the style
// of the fast-path construction of "Asynchronous Latency and Fast Atomic
// Snapshot" (arXiv 2408.02562).
//
// Servers hold one register per writer — the writer's latest (seq,
// payload) pair — merged componentwise by maximum sequence number, so
// every server vector grows monotonically. UPDATE replicates the writer's
// new register state to a quorum of n−f servers (one round). SCAN
// broadcasts a collect; if the first n−f reply vectors are *identical*,
// that vector is returned immediately — one round. The returned vector is
// then unanimously held by a quorum, which is the invariant every return
// path preserves:
//
//   - any two returned vectors are comparable (the two unanimous quorums
//     intersect, and the common server's vector is monotone), so scans
//     are totally ordered;
//   - a completed UPDATE reached n−f servers, which intersect any later
//     scan's unanimous quorum, so the update is contained in every scan
//     that starts after it completes;
//   - a scan returned before another starts is quorum-held throughout the
//     later scan, which therefore returns a superset.
//
// When the collect is not unanimous (contention), the scanner falls back
// to the slow path: write the merged vector back (receivers merge and
// reply with their full vectors — the write-back doubles as the next
// collect) until a round is unanimous. Returned vectors are announced
// with a fire-and-forget COMMIT; a slow-path scanner that sees a
// committed vector covering its first collect's merge adopts it and
// finishes — the committed vector contains every update that completed
// before the scan started (quorum intersection with the first collect)
// and is comparable with every other returned vector, so adoption is
// linearizable, and it bounds the slow path whenever any scanner or a
// previous round succeeded.
//
// Fidelity note: this is a documented reconstruction of the paper's
// one-round fast path on this repository's runtime model, not a
// transcription — the slow path here is the write-back-to-unanimity loop
// with committed-view helping rather than the paper's exact fallback.
// Under sustained contention a slow-path scan converges once the sampled
// quorum quiesces for one round or any commit covering its first merge
// arrives; the chaos harness's crash-abort sweeps bound the run either
// way. Validated against the (A1)-(A4) linearizability checker under
// fuzzed schedules and chaos fault mixes.
package fastsnap

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

// Entry is one writer's register: the latest sequence number and payload.
// Seq 0 with nil Val is the initial ⊥.
type Entry struct {
	Seq int64
	Val []byte
}

// Stats counts operations and scan paths taken.
type Stats struct {
	Updates      int64
	Scans        int64
	FastScans    int64 // one-round scans: first collect unanimous
	SlowScans    int64 // scans that needed write-back rounds
	AdoptedScans int64 // slow scans finished by adopting a committed vector
	Rounds       int64 // total collect + write-back rounds across scans
}

// Node is one fastsnap node: the server registers plus the client
// operations. One server thread (HandleMessage) and one client thread
// (Update/Scan), per the rt contract.
type Node struct {
	rtm    rt.Runtime
	id     int
	n      int
	quorum int

	// Server state, touched by the handler and under rtm.Atomic only.
	regs       []Entry // per-writer maxima
	lastCommit []Entry // componentwise max of all committed vectors seen
	acks       map[int64]int
	colls      map[int64]*collectState

	mySeq   int64 // this node's own sequence counter (client thread, under Atomic)
	nextReq int64
	stats   Stats

	// Operation instrumentation; owned by the client thread.
	obs   rt.Observer
	opSeq int64
	curOp opCtx
}

func init() {
	engine.Register(engine.Info{
		Name: "fastsnap",
		Doc:  "one-round SCAN fast path under low contention, write-back slow path (arXiv 2408.02562)",
		New:  func(r rt.Runtime) engine.Engine { return New(r) },
	})
}

// New creates a fastsnap node on a runtime; install it as the node's
// message handler before operating on it.
func New(r rt.Runtime) *Node {
	n := r.N()
	return &Node{
		rtm:        r,
		id:         r.ID(),
		n:          n,
		quorum:     n - r.F(),
		regs:       make([]Entry, n),
		lastCommit: make([]Entry, n),
		acks:       make(map[int64]int),
		colls:      make(map[int64]*collectState),
	}
}

// Stats returns a snapshot of the node's counters.
func (nd *Node) Stats() Stats {
	var st Stats
	nd.rtm.Atomic(func() { st = nd.stats })
	return st
}

// collectState accumulates one collect/write-back round's replies.
type collectState struct {
	count   int
	uniform bool    // all replies so far carry identical seq vectors
	first   []Entry // the first reply — the unanimity candidate
	merge   []Entry // componentwise max of all replies
	adopted []Entry // set at capture time when the round ends by adoption
}

func cloneVec(vec []Entry) []Entry { return append([]Entry(nil), vec...) }

// sameSeqs reports componentwise sequence equality (payloads are
// determined by (writer, seq): a writer never reuses a sequence number).
func sameSeqs(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq {
			return false
		}
	}
	return true
}

// covers reports a ⊇ b componentwise.
func covers(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq < b[i].Seq {
			return false
		}
	}
	return true
}

// mergeInto folds src into dst componentwise by maximum seq.
func (nd *Node) mergeInto(dst []Entry, src []Entry) {
	for i := 0; i < len(src) && i < len(dst); i++ {
		if src[i].Seq > dst[i].Seq {
			dst[i] = src[i]
		}
	}
}

// HandleMessage implements rt.Handler (server thread; the runtime
// serializes it with Atomic sections).
func (nd *Node) HandleMessage(src int, m rt.Message) {
	switch msg := m.(type) {
	case MsgWrite:
		if src >= 0 && src < nd.n && msg.Seq > nd.regs[src].Seq {
			nd.regs[src] = Entry{Seq: msg.Seq, Val: msg.Val}
		}
		nd.rtm.Send(src, MsgWriteAck{ReqID: msg.ReqID})
	case MsgWriteAck:
		if _, ok := nd.acks[msg.ReqID]; ok {
			nd.acks[msg.ReqID]++
		}
	case MsgCollect:
		nd.rtm.Send(src, MsgCollectAck{ReqID: msg.ReqID, Vec: cloneVec(nd.regs)})
	case MsgWriteBack:
		nd.mergeInto(nd.regs, msg.Vec)
		nd.rtm.Send(src, MsgCollectAck{ReqID: msg.ReqID, Vec: cloneVec(nd.regs)})
	case MsgCollectAck:
		st, ok := nd.colls[msg.ReqID]
		if !ok || len(msg.Vec) != nd.n {
			return
		}
		if st.count == 0 {
			st.first = cloneVec(msg.Vec)
			st.merge = cloneVec(msg.Vec)
			st.uniform = true
		} else {
			if !sameSeqs(msg.Vec, st.first) {
				st.uniform = false
			}
			nd.mergeInto(st.merge, msg.Vec)
		}
		st.count++
	case MsgCommit:
		if len(msg.Vec) != nd.n {
			return
		}
		nd.mergeInto(nd.regs, msg.Vec)
		nd.mergeInto(nd.lastCommit, msg.Vec)
	}
}

// Update writes payload into this node's own segment: one write round to
// a quorum.
func (nd *Node) Update(payload []byte) error {
	return nd.UpdateBatch([][]byte{payload})
}

// UpdateBatch folds a batch of this node's payloads into one write round.
// Only the last payload is replicated: the earlier ones are superseded
// within the batch, so no scan can return them — they linearize
// consecutively right before the final write, exactly as consecutive
// single updates whose values were overwritten before any scan.
func (nd *Node) UpdateBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	if nd.rtm.Crashed() {
		return rt.ErrCrashed
	}
	c := nd.opStart("update")
	err := nd.write(payloads[len(payloads)-1])
	nd.opEnd(c, err)
	return err
}

func (nd *Node) write(payload []byte) error {
	var req, seq int64
	nd.rtm.Atomic(func() {
		nd.mySeq++
		seq = nd.mySeq
		nd.nextReq++
		req = nd.nextReq
		nd.acks[req] = 0
		nd.stats.Updates++
	})
	nd.rtm.Broadcast(MsgWrite{ReqID: req, Seq: seq, Val: payload})
	return nd.rtm.WaitUntilThen("fastsnap write quorum",
		func() bool { return nd.acks[req] >= nd.quorum },
		func() { delete(nd.acks, req) })
}

// Scan returns an atomic snapshot of all n segments. Fast path: one
// collect round with unanimous replies. Slow path: write-back rounds
// until unanimity, or adoption of a committed vector covering the first
// collect's merge.
func (nd *Node) Scan() ([][]byte, error) {
	if nd.rtm.Crashed() {
		return nil, rt.ErrCrashed
	}
	c := nd.opStart("scan")
	vec, err := nd.scan()
	nd.opEnd(c, err)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, nd.n)
	for i, e := range vec {
		if e.Seq > 0 {
			out[i] = e.Val
		}
	}
	return out, nil
}

func (nd *Node) scan() ([]Entry, error) {
	nd.rtm.Atomic(func() { nd.stats.Scans++ })
	nd.phase("collect")
	st, err := nd.round(nil, nil)
	if err != nil {
		return nil, err
	}
	if st.uniform {
		nd.rtm.Atomic(func() { nd.stats.FastScans++; nd.stats.Rounds++ })
		nd.rtm.Broadcast(MsgCommit{Vec: st.first})
		return st.first, nil
	}
	// Slow path. m0 — the merge of the first collect — contains every
	// update that completed before this scan started; any committed
	// vector covering it is an admissible result.
	m0 := st.merge
	cur := st.merge
	rounds := int64(1)
	for {
		nd.phase("writeback")
		rounds++
		st, err = nd.round(cur, m0)
		if err != nil {
			return nil, err
		}
		if st.adopted != nil {
			nd.rtm.Atomic(func() { nd.stats.AdoptedScans++; nd.stats.SlowScans++; nd.stats.Rounds += rounds })
			return st.adopted, nil
		}
		if st.uniform {
			nd.rtm.Atomic(func() { nd.stats.SlowScans++; nd.stats.Rounds += rounds })
			nd.rtm.Broadcast(MsgCommit{Vec: st.first})
			return st.first, nil
		}
		cur = st.merge
	}
}

// round runs one collect (writeback == nil) or write-back round and
// captures its replies. With want set, the wait also completes as soon as
// the node's largest known committed vector covers want (adoption).
func (nd *Node) round(writeback, want []Entry) (*collectState, error) {
	var req int64
	var st *collectState
	nd.rtm.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		st = &collectState{}
		nd.colls[req] = st
	})
	if writeback == nil {
		nd.rtm.Broadcast(MsgCollect{ReqID: req})
	} else {
		nd.rtm.Broadcast(MsgWriteBack{ReqID: req, Vec: writeback})
	}
	var out collectState
	err := nd.rtm.WaitUntilThen("fastsnap collect quorum",
		func() bool {
			if st.count >= nd.quorum {
				return true
			}
			return want != nil && covers(nd.lastCommit, want)
		},
		func() {
			if want != nil && covers(nd.lastCommit, want) && !(st.count >= nd.quorum && st.uniform) {
				out.adopted = cloneVec(nd.lastCommit)
			} else {
				out = *st
			}
			delete(nd.colls, req)
		})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Operation instrumentation (same shape as eqaso's: one client thread, so
// the current-op fields need no synchronization).

type opCtx struct {
	id    int64
	op    string
	start rt.Ticks
}

// SetObserver installs an operation observer. Events emitted: "update"
// and "scan" lifecycles with phases "collect" and "writeback" in between.
func (nd *Node) SetObserver(o rt.Observer) { nd.obs = o }

func (nd *Node) opStart(op string) opCtx {
	nd.opSeq++
	c := opCtx{id: nd.opSeq, op: op, start: nd.rtm.Now()}
	nd.curOp = c
	if nd.obs != nil {
		nd.obs.OnOp(rt.OpEvent{T: c.start, Node: nd.id, ID: c.id, Op: c.op, Phase: rt.PhaseStart})
	}
	return c
}

func (nd *Node) phase(name string) {
	if nd.obs == nil || nd.curOp.op == "" {
		return
	}
	nd.obs.OnOp(rt.OpEvent{T: nd.rtm.Now(), Node: nd.id, ID: nd.curOp.id, Op: nd.curOp.op, Phase: name})
}

func (nd *Node) opEnd(c opCtx, err error) {
	nd.curOp = opCtx{}
	if nd.obs == nil {
		return
	}
	now := nd.rtm.Now()
	nd.obs.OnOp(rt.OpEvent{
		T: now, Node: nd.id, ID: c.id, Op: c.op,
		Phase: rt.PhaseEnd, Dur: now - c.start, Err: err != nil,
	})
}
