package la

import (
	"math/rand"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// RLQuery carries the proposer's current set in a pull round.
type RLQuery struct {
	ReqID int64
	Set   []core.Value
}

// Kind implements rt.Message.
func (RLQuery) Kind() string { return "laQuery" }

// RLReply answers a query with the responder's (joined) set.
type RLReply struct {
	ReqID int64
	Set   []core.Value
}

// Kind implements rt.Message.
func (RLReply) Kind() string { return "laReply" }

// Wire tags 36–37 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 36, Proto: RLQuery{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(RLQuery)
			b.PutVarint(msg.ReqID)
			wire.PutValues(b, msg.Set)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return RLQuery{ReqID: d.Varint(), Set: wire.GetValues(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return RLQuery{ReqID: rng.Int63(), Set: wire.GenValues(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 37, Proto: RLReply{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(RLReply)
			b.PutVarint(msg.ReqID)
			wire.PutValues(b, msg.Set)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return RLReply{ReqID: d.Varint(), Set: wire.GetValues(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return RLReply{ReqID: rng.Int63(), Set: wire.GenValues(rng)}
		},
	})
}

// RoundLA is the pull-based (double-collect style) lattice agreement
// baseline: a node repeatedly broadcasts its set and collects n-f replies;
// responders join the broadcast set into their own knowledge and reply
// with it; the proposer decides when every collected reply equals the set
// it sent (the pull analogue of the equivalence quorum). Each failed round
// grows the set by at least one value, so the worst case is O(n·D) —
// this is the behaviour the paper attributes to double-collect designs
// (Section III-C).
type RoundLA struct {
	rt     rt.Runtime
	id     int
	quorum int

	known   *core.ValueSet
	nextReq int64
	pending map[int64]*rlCollect
}

type rlCollect struct {
	count  int
	stable bool // all replies so far equal the broadcast set
	sent   int  // size of the set that was broadcast
}

// NewRoundLA creates the node; register it as the node's handler.
func NewRoundLA(r rt.Runtime) *RoundLA {
	return &RoundLA{
		rt:      r,
		id:      r.ID(),
		quorum:  r.N() - r.F(),
		known:   core.NewValueSet(),
		pending: make(map[int64]*rlCollect),
	}
}

// HandleMessage implements rt.Handler.
func (l *RoundLA) HandleMessage(src int, m rt.Message) {
	switch msg := m.(type) {
	case RLQuery:
		for _, v := range msg.Set {
			l.known.Add(v)
		}
		l.rt.Send(src, RLReply{ReqID: msg.ReqID, Set: l.known.AllView().Values()})
	case RLReply:
		st, ok := l.pending[msg.ReqID]
		if !ok {
			return
		}
		st.count++
		if len(msg.Set) != st.sent {
			st.stable = false
		}
		for _, v := range msg.Set {
			l.known.Add(v)
		}
	}
}

// Propose disseminates the node's value and decides a comparable view.
func (l *RoundLA) Propose(payload []byte) (core.View, error) {
	if l.rt.Crashed() {
		return core.View{}, rt.ErrCrashed
	}
	ts := core.Timestamp{Tag: 1, Writer: l.id}
	l.rt.Atomic(func() { l.known.Add(core.Value{TS: ts, Payload: payload}) })
	for {
		var req int64
		var sent []core.Value
		var st *rlCollect
		l.rt.Atomic(func() {
			l.nextReq++
			req = l.nextReq
			sent = l.known.AllView().Values()
			st = &rlCollect{stable: true, sent: len(sent)}
			l.pending[req] = st
		})
		l.rt.Broadcast(RLQuery{ReqID: req, Set: sent})
		var decided bool
		err := l.rt.WaitUntilThen("roundLA replies",
			func() bool { return st.count >= l.quorum },
			func() {
				delete(l.pending, req)
				// Replies all equal the sent set ⇒ an equivalence
				// quorum matched it exactly; decide.
				decided = st.stable && l.known.Len() == len(sent)
			})
		if err != nil {
			return core.View{}, err
		}
		if decided {
			return core.ViewOf(sent...), nil
		}
	}
}
