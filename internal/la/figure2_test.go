package la_test

import (
	"testing"

	"mpsnap/internal/harness"
	"mpsnap/internal/la"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// TestFigure2 reproduces the paper's Figure 2 execution of the one-shot
// ASO. Paper node numbering is 1-based; here node 1→0, node 2→1, node 3→2.
//
//	op1: SCAN by node 3  → returns {} immediately (all views empty).
//	op2: UPDATE(u) by node 1.
//	op3: UPDATE(v) by node 3.
//	op4: SCAN by node 1  → returns {u,v} immediately
//	     (V1[1] = V1[3] = {u,v}, V1[2] = {}).
//	op5: UPDATE(w) by node 2.
//	op6: SCAN by node 3  → blocked: V3[1]={u,v}, V3[2]={w}, V3[3]={u,v,w};
//	     it must wait for forwarded values from node 1 or node 2, and then
//	     returns {u,v,w}.
//
// The slow links isolate node 2 (paper numbering): everything it receives
// is slow, as is node 1's inbound link from it.
func TestFigure2(t *testing.T) {
	const (
		fast = 50
		slow = 800
		D    = rt.TicksPerD
	)
	delays := sim.SlowLinks{
		Slow: map[[2]int]bool{
			{0, 1}: true, // node1 → node2 (paper) slow
			{2, 1}: true, // node3 → node2 slow
			{1, 0}: true, // node2 → node1 slow
		},
		SlowDelay: slow,
		FastDelay: fast,
	}
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 1, D: D, Delay: delays})
	objs := make([]*la.OneShot, 3)
	for i := 0; i < 3; i++ {
		objs[i] = la.NewOneShot(w.Runtime(i))
		w.SetHandler(i, objs[i])
	}

	type scanResult struct {
		snap     []string
		inv, rsp rt.Ticks
	}
	results := make(map[string]*scanResult)
	scan := func(p *sim.Proc, node int, name string) {
		r := &scanResult{inv: p.Now()}
		snap, err := objs[node].Scan()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		r.snap = harness.SnapStrings(snap)
		r.rsp = p.Now()
		results[name] = r
	}

	// Node 1 (idx 0): op2 = UPDATE(u) at t≈0, then op4 = SCAN at t=150.
	w.GoNode("node1", 0, func(p *sim.Proc) {
		if err := objs[0].Update([]byte("u")); err != nil {
			t.Errorf("op2: %v", err)
		}
		if err := p.Sleep(150 - p.Now()); err != nil {
			return
		}
		scan(p, 0, "op4")
	})
	// Node 2 (idx 1): op5 = UPDATE(w) at t=200.
	w.GoNode("node2", 1, func(p *sim.Proc) {
		if err := p.Sleep(200); err != nil {
			return
		}
		if err := objs[1].Update([]byte("w")); err != nil {
			t.Errorf("op5: %v", err)
		}
	})
	// Node 3 (idx 2): op1 = SCAN at t=0, op3 = UPDATE(v), op6 = SCAN at
	// t=260 — right after w reached it (t=250) and before any forwarded
	// copy of w can come back, so the scan observes the blocked state of
	// the figure: V3[1]={u,v}, V3[2]={w}, V3[3]={u,v,w}.
	w.GoNode("node3", 2, func(p *sim.Proc) {
		scan(p, 2, "op1")
		if err := objs[2].Update([]byte("v")); err != nil {
			t.Errorf("op3: %v", err)
		}
		if err := p.Sleep(260 - p.Now()); err != nil {
			return
		}
		scan(p, 2, "op6")
	})

	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	op1 := results["op1"]
	if op1 == nil || op1.snap[0] != "" || op1.snap[1] != "" || op1.snap[2] != "" {
		t.Fatalf("op1 must return the empty snapshot, got %+v", op1)
	}
	if op1.rsp != op1.inv {
		t.Errorf("op1 must return immediately (paper: EQ holds on empty views), took %d ticks", op1.rsp-op1.inv)
	}

	op4 := results["op4"]
	if op4 == nil || op4.snap[0] != "u" || op4.snap[1] != "" || op4.snap[2] != "v" {
		t.Fatalf("op4 must return {u,·,v} with node 2's segment ⊥, got %+v", op4)
	}
	if op4.rsp != op4.inv {
		t.Errorf("op4 must return immediately (V1[1]=V1[3]={u,v}), took %d ticks", op4.rsp-op4.inv)
	}

	op6 := results["op6"]
	if op6 == nil || op6.snap[0] != "u" || op6.snap[1] != "w" || op6.snap[2] != "v" {
		t.Fatalf("op6 must return {u,w,v}, got %+v", op6)
	}
	// op6 unblocks only once a forwarded copy of w closes the loop
	// (node 1 forwards w back at inv+~90, or node 2's forwards of u,v
	// arrive much later) — the figure's blue arrows.
	if op6.rsp-op6.inv < 80 {
		t.Errorf("op6 must block waiting for forwarded values (paper's blue arrows); took only %d ticks", op6.rsp-op6.inv)
	}

	// The three bases {} ⊆ {op2,op3} ⊆ {op2,op3,op5} are comparable —
	// "this is not by coincidence" (Section III-C).
	base := func(s []string) (b int) {
		for _, v := range s {
			if v != "" {
				b++
			}
		}
		return
	}
	if !(base(op1.snap) <= base(op4.snap) && base(op4.snap) <= base(op6.snap)) {
		t.Fatal("bases must form a chain")
	}
}
