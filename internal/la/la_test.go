package la_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap/internal/core"
	"mpsnap/internal/harness"
	"mpsnap/internal/la"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

func TestOneShotSketchEnsuresComparableBases(t *testing.T) {
	// The warm-up sketch of Section III-C guarantees condition (A1) —
	// comparable bases — but deliberately not A2/A3 (the paper assigns
	// those to "typical techniques that ensure quorum intersection").
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		f := (n - 1) / 2
		c := harness.Build(sim.Config{N: n, F: f, Seed: seed}, func(r rt.Runtime) (rt.Handler, harness.Object) {
			o := la.NewOneShot(r)
			return o, o
		})
		k := rng.Intn(f + 1)
		for victim := 0; victim < k; victim++ {
			c.W.CrashAt(n-1-victim, rt.Ticks(rng.Intn(8000)))
		}
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				rng := rand.New(rand.NewSource(seed*17 + int64(i)))
				_ = o.P.Sleep(rt.Ticks(rng.Intn(3000)))
				if _, err := o.Scan(); err != nil {
					return
				}
				if err := o.UpdateValue(fmt.Sprintf("v%d-1", i)); err != nil {
					return
				}
				if _, err := o.Scan(); err != nil {
					return
				}
			})
		}
		h, err := c.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := h.ValidateValues(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if viol := h.CheckA1(); len(viol) != 0 {
			t.Logf("seed %d: %v", seed, viol[0])
			return false
		}
		if viol := h.CheckA4(); len(viol) != 0 {
			t.Logf("seed %d: %v", seed, viol[0])
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOneShotAtomicLinearizable(t *testing.T) {
	// The properly integrated one-shot ASO (collect round + EQ wait) is
	// fully linearizable under random delays and crashes.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		f := (n - 1) / 2
		c := harness.Build(sim.Config{N: n, F: f, Seed: seed}, func(r rt.Runtime) (rt.Handler, harness.Object) {
			o := la.NewOneShotAtomic(r)
			return o, o
		})
		k := rng.Intn(f + 1)
		for victim := 0; victim < k; victim++ {
			c.W.CrashAt(n-1-victim, rt.Ticks(rng.Intn(8000)))
		}
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				rng := rand.New(rand.NewSource(seed*17 + int64(i)))
				_ = o.P.Sleep(rt.Ticks(rng.Intn(3000)))
				if _, err := o.Scan(); err != nil {
					return
				}
				if err := o.UpdateValue(fmt.Sprintf("v%d-1", i)); err != nil {
					return
				}
				if _, err := o.Scan(); err != nil {
					return
				}
			})
		}
		h, err := c.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if rep := h.CheckLinearizable(); !rep.OK {
			t.Logf("seed %d: %v", seed, rep.Violations[0])
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOneShotDoubleUpdateRejected(t *testing.T) {
	c := harness.Build(sim.Config{N: 3, F: 1, Seed: 1}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		o := la.NewOneShot(r)
		return o, o
	})
	var second error
	c.Client(0, func(o *harness.OpRunner) {
		if err := o.UpdateValue("a"); err != nil {
			t.Errorf("first update: %v", err)
		}
		second = c.Objects[0].(*la.OneShot).Update([]byte("b"))
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if second != la.ErrAlreadyUpdated {
		t.Fatalf("second update returned %v, want ErrAlreadyUpdated", second)
	}
}

// runLA runs a one-shot lattice agreement with the given node factory and
// returns the decided views (nil for nodes that crashed before deciding).
func runLA(t *testing.T, seed int64, n, f, crashes int,
	mk func(r rt.Runtime) (rt.Handler, func([]byte) (core.View, error))) []core.View {
	t.Helper()
	w := sim.New(sim.Config{N: n, F: f, Seed: seed})
	decided := make([]core.View, n)
	propose := make([]func([]byte) (core.View, error), n)
	for i := 0; i < n; i++ {
		h, p := mk(w.Runtime(i))
		w.SetHandler(i, h)
		propose[i] = p
	}
	rng := rand.New(rand.NewSource(seed))
	for victim := 0; victim < crashes; victim++ {
		w.CrashAt(n-1-victim, rt.Ticks(rng.Intn(5000)))
	}
	for i := 0; i < n; i++ {
		i := i
		w.GoNode(fmt.Sprintf("proposer-%d", i), i, func(p *sim.Proc) {
			_ = p.Sleep(rt.Ticks(rng.Intn(2000)))
			v, err := propose[i]([]byte(fmt.Sprintf("x%d", i)))
			if err != nil {
				return
			}
			decided[i] = v
		})
	}
	if err := w.Run(); err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	return decided
}

// checkLAProperties verifies downward-validity, upward-validity, and
// comparability of the decided views.
func checkLAProperties(t *testing.T, decided []core.View, n int) {
	t.Helper()
	anyDecided := false
	for i, v := range decided {
		if v.Len() == 0 {
			continue
		}
		anyDecided = true
		// Upward validity: own proposal included.
		if !v.Contains(core.Timestamp{Tag: 1, Writer: i}) {
			t.Fatalf("node %d's decision misses its own proposal: %v", i, v)
		}
		// Downward validity: only proposed values.
		for _, val := range v.Values() {
			if val.TS.Tag != 1 || val.TS.Writer < 0 || val.TS.Writer >= n {
				t.Fatalf("node %d decided a non-proposal %v", i, val.TS)
			}
		}
	}
	if !anyDecided {
		t.Fatal("no node decided")
	}
	for i := range decided {
		for j := i + 1; j < len(decided); j++ {
			if decided[i].Len() == 0 || decided[j].Len() == 0 {
				continue
			}
			if !decided[i].ComparableWith(decided[j]) {
				t.Fatalf("decisions %d and %d incomparable:\n%v\n%v", i, j, decided[i], decided[j])
			}
		}
	}
}

func TestEQLAProperties(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		n := 3 + int(seed)%6
		f := (n - 1) / 2
		crashes := int(seed) % (f + 1)
		decided := runLA(t, seed, n, f, crashes, func(r rt.Runtime) (rt.Handler, func([]byte) (core.View, error)) {
			l := la.NewEQLA(r)
			return l, l.Propose
		})
		checkLAProperties(t, decided, n)
	}
}

func TestRoundLAProperties(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		n := 3 + int(seed)%6
		f := (n - 1) / 2
		crashes := int(seed) % (f + 1)
		decided := runLA(t, seed, n, f, crashes, func(r rt.Runtime) (rt.Handler, func([]byte) (core.View, error)) {
			l := la.NewRoundLA(r)
			return l, l.Propose
		})
		checkLAProperties(t, decided, n)
	}
}

func TestEQLAFailureFreeFast(t *testing.T) {
	// With no failures and all delays = D, every proposer must decide in
	// a small constant number of D (the paper's 2D-flavored bound for
	// the one-shot case).
	n := 9
	w := sim.New(sim.Config{N: n, F: 4, Seed: 2, Delay: sim.Constant{Ticks: rt.TicksPerD}})
	objs := make([]*la.EQLA, n)
	for i := 0; i < n; i++ {
		objs[i] = la.NewEQLA(w.Runtime(i))
		w.SetHandler(i, objs[i])
	}
	worst := rt.Ticks(0)
	for i := 0; i < n; i++ {
		i := i
		w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
			start := p.Now()
			if _, err := objs[i].Propose([]byte(fmt.Sprintf("x%d", i))); err != nil {
				t.Errorf("propose: %v", err)
				return
			}
			if l := p.Now() - start; l > worst {
				worst = l
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if worst.DUnits() > 3.0 {
		t.Fatalf("failure-free EQLA took %.1fD, want ≤ 3D", worst.DUnits())
	}
}

func TestRoundLAGrowsWithConcurrency(t *testing.T) {
	// The pull-based baseline needs more time as more proposals arrive
	// concurrently (the O(n·D) behaviour the paper ascribes to
	// double-collect); EQLA stays flat. We compare their worst latency
	// on the same staggered workload.
	measure := func(mk func(r rt.Runtime) (rt.Handler, func([]byte) (core.View, error)), n int) float64 {
		w := sim.New(sim.Config{N: n, F: (n - 1) / 2, Seed: 7, Delay: sim.Constant{Ticks: rt.TicksPerD}})
		props := make([]func([]byte) (core.View, error), n)
		for i := 0; i < n; i++ {
			h, p := mk(w.Runtime(i))
			w.SetHandler(i, h)
			props[i] = p
		}
		var worst rt.Ticks
		for i := 0; i < n; i++ {
			i := i
			w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
				// Stagger proposals so each pull round discovers one
				// more value.
				_ = p.Sleep(rt.Ticks(i) * rt.TicksPerD / 2)
				start := p.Now()
				if _, err := props[i]([]byte(fmt.Sprintf("x%d", i))); err != nil {
					t.Errorf("propose: %v", err)
					return
				}
				if l := p.Now() - start; l > worst {
					worst = l
				}
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return worst.DUnits()
	}
	n := 13
	roundWorst := measure(func(r rt.Runtime) (rt.Handler, func([]byte) (core.View, error)) {
		l := la.NewRoundLA(r)
		return l, l.Propose
	}, n)
	eqWorst := measure(func(r rt.Runtime) (rt.Handler, func([]byte) (core.View, error)) {
		l := la.NewEQLA(r)
		return l, l.Propose
	}, n)
	t.Logf("staggered proposals, n=%d: RoundLA worst %.1fD, EQLA worst %.1fD", n, roundWorst, eqWorst)
	if roundWorst <= eqWorst {
		t.Fatalf("pull-based LA (%.1fD) should be slower than proactive EQLA (%.1fD) under concurrency", roundWorst, eqWorst)
	}
}
