package la_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"mpsnap/internal/core"
	"mpsnap/internal/la"
	"mpsnap/internal/rbc"
	"mpsnap/internal/sim"
)

func deployByzLA(n, f int, seed int64) (*sim.World, []*la.ByzEQLA) {
	w := sim.New(sim.Config{N: n, F: f, Seed: seed})
	nodes := make([]*la.ByzEQLA, n)
	for i := 0; i < n; i++ {
		nodes[i] = la.NewByzEQLA(w.Runtime(i))
		w.SetHandler(i, nodes[i])
	}
	return w, nodes
}

func runByzLA(t *testing.T, w *sim.World, nodes []*la.ByzEQLA, proposers []int) []core.View {
	t.Helper()
	decided := make([]core.View, len(nodes))
	for _, i := range proposers {
		i := i
		w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
			v, err := nodes[i].Propose([]byte(fmt.Sprintf("x%d", i)))
			if err != nil {
				return
			}
			decided[i] = v
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return decided
}

func checkByzLA(t *testing.T, decided []core.View, n int, mustDecide []int) {
	t.Helper()
	for _, i := range mustDecide {
		if decided[i].Len() == 0 {
			t.Fatalf("node %d failed to decide", i)
		}
		if !decided[i].Contains(core.Timestamp{Tag: 1, Writer: i}) {
			t.Fatalf("node %d's decision misses its own proposal", i)
		}
	}
	for i := range decided {
		for j := i + 1; j < len(decided); j++ {
			if decided[i].Len() == 0 || decided[j].Len() == 0 {
				continue
			}
			if !decided[i].ComparableWith(decided[j]) {
				t.Fatalf("decisions %d and %d incomparable:\n%v\n%v", i, j, decided[i], decided[j])
			}
		}
	}
}

func TestByzEQLAHonest(t *testing.T) {
	n, f := 7, 2
	w, nodes := deployByzLA(n, f, 1)
	all := []int{0, 1, 2, 3, 4, 5, 6}
	decided := runByzLA(t, w, nodes, all)
	checkByzLA(t, decided, n, all)
}

func TestByzEQLASilentByzantine(t *testing.T) {
	n, f := 7, 2
	w, nodes := deployByzLA(n, f, 2)
	w.CrashAt(5, 0)
	w.CrashAt(6, 0)
	live := []int{0, 1, 2, 3, 4}
	decided := runByzLA(t, w, nodes, live)
	checkByzLA(t, decided, n, live)
}

func TestByzEQLAForgedProposerIgnored(t *testing.T) {
	n, f := 7, 2
	w, nodes := deployByzLA(n, f, 3)
	// Byzantine node 6 RBCs a proposal naming node 0 as the writer.
	forger := rbc.New(w.Runtime(6), nil)
	w.Go("forger", func(p *sim.Proc) {
		buf := make([]byte, 4+4)
		binary.BigEndian.PutUint32(buf, 0) // claims writer 0
		copy(buf[4:], "evil")
		forger.Broadcast(buf)
	})
	live := []int{1, 2, 3, 4, 5}
	decided := runByzLA(t, w, nodes, live)
	checkByzLA(t, decided, n, live)
	for _, i := range live {
		for _, v := range decided[i].Values() {
			if string(v.Payload) == "evil" {
				t.Fatalf("forged proposal leaked into node %d's decision", i)
			}
			if v.TS.Writer == 0 {
				t.Fatalf("node 0 never proposed but appears in node %d's decision", i)
			}
		}
	}
}

func TestByzEQLAHaveSpammer(t *testing.T) {
	// A Byzantine node sprays HAVE announcements for proposals that were
	// never delivered; honest decisions must stay live and comparable.
	n, f := 7, 2
	w, nodes := deployByzLA(n, f, 4)
	w.Go("spammer", func(p *sim.Proc) {
		r := w.Runtime(6)
		for k := 0; k < 30; k++ {
			r.Broadcast(la.BLHave{Writer: (k % n)})
			if err := p.Sleep(200); err != nil {
				return
			}
		}
	})
	live := []int{0, 1, 2, 3, 4}
	decided := runByzLA(t, w, nodes, live)
	checkByzLA(t, decided, n, live)
}

func TestByzEQLADoubleProposeRejected(t *testing.T) {
	n, f := 4, 1
	w, nodes := deployByzLA(n, f, 5)
	var second error
	w.GoNode("p0", 0, func(p *sim.Proc) {
		if _, err := nodes[0].Propose([]byte("a")); err != nil {
			t.Errorf("first propose: %v", err)
			return
		}
		_, second = nodes[0].Propose([]byte("b"))
	})
	for i := 1; i < n; i++ {
		i := i
		w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
			_, _ = nodes[i].Propose([]byte(fmt.Sprintf("x%d", i)))
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if second != la.ErrAlreadyUpdated {
		t.Fatalf("second propose returned %v", second)
	}
}

func TestByzEQLARequiresN3F(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewByzEQLA must reject n <= 3f")
		}
	}()
	w := sim.New(sim.Config{N: 4, F: 2, Seed: 1})
	la.NewByzEQLA(w.Runtime(0))
}
