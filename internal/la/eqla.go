package la

import (
	"mpsnap/internal/core"
	"mpsnap/internal/rt"
)

// EQLA is the early-stopping one-shot lattice agreement algorithm obtained
// by abstracting the paper's lattice operation (Section I-B): every node
// proposes one value; the decided views are pairwise comparable, contain
// the proposer's own value, and contain only proposed values. Proactive
// forwarding gives O(√k·D) time where k is the number of actual crashes
// (the same failure-chain bound as EQ-ASO's lattice operation).
//
// EQLA shares OneShot's message types ("value"/"valueAck"); a deployment
// uses one or the other per object instance.
type EQLA struct {
	inner *OneShot
}

// NewEQLA creates the node; register it as the node's handler.
func NewEQLA(r rt.Runtime) *EQLA { return &EQLA{inner: NewOneShot(r)} }

// HandleMessage implements rt.Handler.
func (l *EQLA) HandleMessage(src int, m rt.Message) { l.inner.HandleMessage(src, m) }

// Propose disseminates the node's proposal and decides once the node's own
// value is present and the equivalence quorum predicate EQ(V, i) holds.
// The returned view is the decided lattice value.
func (l *EQLA) Propose(payload []byte) (core.View, error) {
	o := l.inner
	if o.rt.Crashed() {
		return core.View{}, rt.ErrCrashed
	}
	ts := core.Timestamp{Tag: 1, Writer: o.id}
	var dup bool
	o.rt.Atomic(func() {
		dup = o.updated
		if !dup {
			o.updated = true
			o.forwarded[ts] = true
			o.acks[ts] = 1
		}
	})
	if dup {
		return core.View{}, ErrAlreadyUpdated
	}
	o.rt.Broadcast(OSValue{Val: core.Value{TS: ts, Payload: payload}})
	var tracker *core.EQTracker
	o.rt.Atomic(func() {
		tracker = core.NewEQTracker(o.V, o.id, core.MaxTag, o.quorum)
		o.wait = tracker
	})
	var view core.View
	err := o.rt.WaitUntilThen("EQLA decide",
		func() bool { return o.V[o.id].Has(ts) && tracker.Satisfied() },
		func() {
			o.wait = nil
			view = o.V[o.id].AllView()
		})
	if err != nil {
		return core.View{}, err
	}
	return view, nil
}
