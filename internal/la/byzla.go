package la

import (
	"encoding/binary"
	"math/rand"

	"mpsnap/internal/core"
	"mpsnap/internal/rbc"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// BLHave announces that the sender RBC-delivered the proposal of Writer.
type BLHave struct{ Writer int }

// Kind implements rt.Message.
func (BLHave) Kind() string { return "blHave" }

// Wire tag 38 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 38, Proto: BLHave{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutInt(m.(BLHave).Writer) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return BLHave{Writer: d.Int()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return BLHave{Writer: rng.Intn(16)} },
	})
}

// ByzEQLA is the Byzantine-tolerant one-shot lattice agreement (n > 3f),
// the equivalence-quorum lattice operation hardened the same way as the
// Byzantine ASO:
//
//   - proposals are disseminated with Bracha reliable broadcast, so a
//     Byzantine proposer contributes at most one value (accepted only if
//     it names its RBC origin as writer);
//   - V[j] is built from j's HAVE announcements, admitted in announcement
//     order and only once locally delivered, keeping V[j] a prefix of j's
//     honest stream;
//   - a node decides when its own proposal is delivered and EQ(V, i)
//     holds; two decisions share a correct quorum member (n > 3f), so all
//     decided views are comparable.
type ByzEQLA struct {
	rt     rt.Runtime
	id     int
	n      int
	quorum int

	layer     *rbc.RBC
	V         []*core.ValueSet
	haveQueue [][]int // queued HAVE writers per sender, in arrival order
	wait      *core.EQTracker
	proposed  bool
}

// NewByzEQLA creates the node (panics unless n > 3f); register it as the
// node's message handler.
func NewByzEQLA(r rt.Runtime) *ByzEQLA {
	n := r.N()
	l := &ByzEQLA{
		rt:        r,
		id:        r.ID(),
		n:         n,
		quorum:    n - r.F(),
		V:         make([]*core.ValueSet, n),
		haveQueue: make([][]int, n),
	}
	for i := range l.V {
		l.V[i] = core.NewValueSet()
	}
	l.layer = rbc.New(r, l.onDeliver)
	return l
}

// HandleMessage implements rt.Handler.
func (l *ByzEQLA) HandleMessage(src int, m rt.Message) {
	if l.layer.Handle(src, m) {
		return
	}
	if h, ok := m.(BLHave); ok {
		l.haveQueue[src] = append(l.haveQueue[src], h.Writer)
		l.drainHaves(src)
	}
}

func (l *ByzEQLA) onDeliver(id rbc.ID, payload []byte) {
	if len(payload) < 4 {
		return
	}
	writer := int(int32(binary.BigEndian.Uint32(payload)))
	if writer != id.Origin {
		return // forged proposer
	}
	v := core.Value{TS: core.Timestamp{Tag: 1, Writer: writer}, Payload: append([]byte(nil), payload[4:]...)}
	if !l.V[l.id].Add(v) {
		return
	}
	if l.wait != nil {
		l.wait.OnAdd(l.id, v, true, true)
	}
	l.rt.Broadcast(BLHave{Writer: writer})
	for j := 0; j < l.n; j++ {
		if j != l.id {
			l.drainHaves(j)
		}
	}
}

func (l *ByzEQLA) drainHaves(src int) {
	if src == l.id {
		l.haveQueue[src] = nil
		return
	}
	q := l.haveQueue[src]
	for len(q) > 0 {
		ts := core.Timestamp{Tag: 1, Writer: q[0]}
		p, ok := l.V[l.id].Get(ts)
		if !ok {
			break
		}
		q = q[1:]
		v := core.Value{TS: ts, Payload: p}
		if l.V[src].Add(v) && l.wait != nil {
			l.wait.OnAdd(src, v, true, false)
		}
	}
	l.haveQueue[src] = q
}

// Propose disseminates the node's proposal and decides a comparable view.
func (l *ByzEQLA) Propose(payload []byte) (core.View, error) {
	if l.rt.Crashed() {
		return core.View{}, rt.ErrCrashed
	}
	var dup bool
	l.rt.Atomic(func() {
		dup = l.proposed
		if !dup {
			l.proposed = true
			buf := make([]byte, 4+len(payload))
			binary.BigEndian.PutUint32(buf, uint32(l.id))
			copy(buf[4:], payload)
			l.layer.Broadcast(buf)
		}
	})
	if dup {
		return core.View{}, ErrAlreadyUpdated
	}
	var tracker *core.EQTracker
	l.rt.Atomic(func() {
		tracker = core.NewEQTracker(l.V, l.id, core.MaxTag, l.quorum)
		l.wait = tracker
	})
	ts := core.Timestamp{Tag: 1, Writer: l.id}
	var view core.View
	err := l.rt.WaitUntilThen("byz EQLA decide",
		func() bool { return l.V[l.id].Has(ts) && tracker.Satisfied() },
		func() {
			l.wait = nil
			view = l.V[l.id].AllView()
		})
	if err != nil {
		return core.View{}, err
	}
	return view, nil
}
