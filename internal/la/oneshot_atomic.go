package la

import (
	"math/rand"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// OSScanRead asks responders for their current view (the "typical
// technique that ensures quorum intersection", Section III-B, that turns
// the one-shot warm-up sketch into a full ASO).
type OSScanRead struct{ ReqID int64 }

// Kind implements rt.Message.
func (OSScanRead) Kind() string { return "scanRead" }

// OSScanReadAck carries the responder's current view.
type OSScanReadAck struct {
	ReqID int64
	Set   []core.Value
}

// Kind implements rt.Message.
func (OSScanReadAck) Kind() string { return "scanReadAck" }

// Wire tags 34–35 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 34, Proto: OSScanRead{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(OSScanRead).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return OSScanRead{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return OSScanRead{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 35, Proto: OSScanReadAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(OSScanReadAck)
			b.PutVarint(msg.ReqID)
			wire.PutValues(b, msg.Set)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return OSScanReadAck{ReqID: d.Varint(), Set: wire.GetValues(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return OSScanReadAck{ReqID: rng.Int63(), Set: wire.GenValues(rng)}
		},
	})
}

// OneShotAtomic is the one-shot ASO with full linearizability. OneShot is
// the paper's warm-up sketch, which guarantees comparable bases (A1) but
// deliberately leaves the remaining conditions to "typical techniques"
// (Section III-B): without them, a scan on a node whose channels are
// lagging can satisfy EQ on a stale view and miss a completed operation
// (violating A2/A3). OneShotAtomic adds the missing quorum round: a SCAN
// first collects the views of n-f nodes (joining them into its own view —
// quorum intersection then guarantees it has seen the result of every
// completed operation) and only then waits for the EQ predicate.
type OneShotAtomic struct {
	inner *OneShot

	nextReq int64
	reads   map[int64]int
}

// NewOneShotAtomic creates the node; register it as the node's handler.
func NewOneShotAtomic(r rt.Runtime) *OneShotAtomic {
	return &OneShotAtomic{inner: NewOneShot(r), reads: make(map[int64]int)}
}

// HandleMessage implements rt.Handler.
func (o *OneShotAtomic) HandleMessage(src int, m rt.Message) {
	in := o.inner
	switch msg := m.(type) {
	case OSScanRead:
		in.rt.Send(src, OSScanReadAck{ReqID: msg.ReqID, Set: in.V[in.id].AllView().Values()})
	case OSScanReadAck:
		if _, ok := o.reads[msg.ReqID]; !ok {
			return
		}
		o.reads[msg.ReqID]++
		// Join the reported values as if src had sent each one; this
		// preserves the invariants of V (and forwards what is new).
		for _, v := range msg.Set {
			in.HandleMessage(src, OSValue{Val: v})
		}
	default:
		in.HandleMessage(src, m)
	}
}

// Update implements the one-shot UPDATE (identical to the sketch).
func (o *OneShotAtomic) Update(payload []byte) error { return o.inner.Update(payload) }

// Scan implements the linearizable one-shot SCAN: a collect round
// followed by the EQ predicate wait.
func (o *OneShotAtomic) Scan() ([][]byte, error) {
	in := o.inner
	if in.rt.Crashed() {
		return nil, rt.ErrCrashed
	}
	var req int64
	in.rt.Atomic(func() {
		o.nextReq++
		req = o.nextReq
		o.reads[req] = 0
	})
	in.rt.Broadcast(OSScanRead{ReqID: req})
	err := in.rt.WaitUntilThen("one-shot collect",
		func() bool { return o.reads[req] >= in.quorum },
		func() { delete(o.reads, req) })
	if err != nil {
		return nil, err
	}
	// Everything a completed operation returned is now in V[id]; the EQ
	// wait can only return a superset of it.
	return o.inner.Scan()
}
