// Package la implements the lattice-agreement side of the paper's
// framework:
//
//   - OneShot: the one-shot ASO of Section III-C (each node updates at most
//     once; scans wait for the untagged EQ predicate). This is the object
//     behind Figure 2.
//   - EQLA: the early-stopping one-shot lattice agreement obtained by
//     abstracting the lattice operation (Section I-B), with O(√k·D) time.
//   - RoundLA: a pull-based (double-collect style) lattice agreement used
//     as the baseline the paper contrasts proactive forwarding against;
//     it takes O(n·D) in the worst case.
package la

import (
	"math/rand"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// OSValue disseminates a one-shot value (written or forwarded).
type OSValue struct{ Val core.Value }

// Kind implements rt.Message.
func (OSValue) Kind() string { return "value" }

// OSAck acknowledges first receipt of a value to its writer.
type OSAck struct{ TS core.Timestamp }

// Kind implements rt.Message.
func (OSAck) Kind() string { return "valueAck" }

// Wire tags 32–33 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 32, Proto: OSValue{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutValue(b, m.(OSValue).Val) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return OSValue{Val: wire.GetValue(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return OSValue{Val: wire.GenValue(rng)} },
	})
	wire.Register(wire.Codec{
		Tag: 33, Proto: OSAck{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutTimestamp(b, m.(OSAck).TS) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return OSAck{TS: wire.GetTimestamp(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return OSAck{TS: wire.GenTimestamp(rng)} },
	})
}

// OneShot is the one-shot atomic snapshot object of Section III-C: UPDATE
// broadcasts the value and waits for n-f acknowledgements; SCAN waits for
// the local predicate EQ(V, i) and returns the equivalence set. Values are
// proactively forwarded on first receipt.
type OneShot struct {
	rt     rt.Runtime
	id     int
	n      int
	quorum int

	V         []*core.ValueSet
	forwarded map[core.Timestamp]bool
	acks      map[core.Timestamp]int
	wait      *core.EQTracker
	updated   bool
}

// NewOneShot creates the node; register it as the node's handler.
func NewOneShot(r rt.Runtime) *OneShot {
	n := r.N()
	o := &OneShot{
		rt:        r,
		id:        r.ID(),
		n:         n,
		quorum:    n - r.F(),
		V:         make([]*core.ValueSet, n),
		forwarded: make(map[core.Timestamp]bool),
		acks:      make(map[core.Timestamp]int),
	}
	for i := range o.V {
		o.V[i] = core.NewValueSet()
	}
	return o
}

// HandleMessage implements rt.Handler.
func (o *OneShot) HandleMessage(src int, m rt.Message) {
	switch msg := m.(type) {
	case OSValue:
		newToJ := o.V[src].Add(msg.Val)
		newToSelf := newToJ
		if src != o.id {
			newToSelf = o.V[o.id].Add(msg.Val)
		}
		if o.wait != nil {
			o.wait.OnAdd(src, msg.Val, newToJ, newToSelf)
		}
		if !o.forwarded[msg.Val.TS] {
			o.forwarded[msg.Val.TS] = true
			o.rt.Broadcast(OSValue{Val: msg.Val})
			o.rt.Send(msg.Val.TS.Writer, OSAck{TS: msg.Val.TS})
		}
	case OSAck:
		if _, mine := o.acks[msg.TS]; mine {
			o.acks[msg.TS]++
		}
	}
}

// Update implements the one-shot UPDATE. Each node may call it at most
// once.
func (o *OneShot) Update(payload []byte) error {
	if o.rt.Crashed() {
		return rt.ErrCrashed
	}
	ts := core.Timestamp{Tag: 1, Writer: o.id}
	var dup bool
	o.rt.Atomic(func() {
		dup = o.updated
		if !dup {
			o.updated = true
			o.forwarded[ts] = true
			// The writer counts as its own first receipt: marking the
			// value as forwarded suppresses the self-ack, so seed the
			// counter with it.
			o.acks[ts] = 1
		}
	})
	if dup {
		return ErrAlreadyUpdated
	}
	o.rt.Broadcast(OSValue{Val: core.Value{TS: ts, Payload: payload}})
	return rt.WaitUntil(o.rt, "one-shot update acks",
		func() bool { return o.acks[ts] >= o.quorum })
}

// Scan implements the one-shot SCAN: wait until EQ(V, i) holds, return the
// extracted equivalence set.
func (o *OneShot) Scan() ([][]byte, error) {
	view, err := o.ScanView()
	if err != nil {
		return nil, err
	}
	return view.Extract(o.n), nil
}

// ScanView is Scan returning the raw equivalence set.
func (o *OneShot) ScanView() (core.View, error) {
	if o.rt.Crashed() {
		return core.View{}, rt.ErrCrashed
	}
	var tracker *core.EQTracker
	o.rt.Atomic(func() {
		tracker = core.NewEQTracker(o.V, o.id, core.MaxTag, o.quorum)
		o.wait = tracker
	})
	var view core.View
	err := o.rt.WaitUntilThen("one-shot EQ predicate",
		tracker.Satisfied,
		func() {
			o.wait = nil
			view = o.V[o.id].AllView()
		})
	if err != nil {
		return core.View{}, err
	}
	return view, nil
}

// ErrAlreadyUpdated is returned by OneShot.Update on a second call.
var ErrAlreadyUpdated = errAlreadyUpdated{}

type errAlreadyUpdated struct{}

func (errAlreadyUpdated) Error() string { return "la: one-shot object already updated by this node" }
