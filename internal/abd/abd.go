// Package abd emulates single-writer multi-reader (SWMR) atomic registers
// in a crash-prone asynchronous message-passing system, in the style of
// Attiya–Bar-Noy–Dolev (reference [8] of the paper). It is the substrate
// for the "stacking" baseline the paper's introduction argues against
// (building an ASO by layering a shared-memory snapshot over emulated
// registers), and the quorum store used by the Delporte-et-al.-style
// direct baseline.
//
// Node i owns register i. Writes go to a majority and cost O(D); reads
// query a majority and write the value back before returning (the ABD
// read fix for atomicity).
package abd

import (
	"math/rand"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// Entry is one register's state: the owner's value with its sequence
// number. Seq 0 with nil Val is the initial ⊥.
type Entry struct {
	Owner int
	Seq   int64
	Val   []byte
}

// newer reports whether e supersedes o for the same register.
func (e Entry) newer(o Entry) bool { return e.Seq > o.Seq }

// MsgStore asks the receiver to adopt entries (used by writes and
// write-backs).
type MsgStore struct {
	ReqID   int64
	Entries []Entry
}

// Kind implements rt.Message.
func (MsgStore) Kind() string { return "abdStore" }

// MsgStoreAck acknowledges a MsgStore.
type MsgStoreAck struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgStoreAck) Kind() string { return "abdStoreAck" }

// MsgQuery asks for the receiver's register vector.
type MsgQuery struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgQuery) Kind() string { return "abdQuery" }

// MsgQueryAck returns the receiver's register vector.
type MsgQueryAck struct {
	ReqID   int64
	Entries []Entry
}

// Kind implements rt.Message.
func (MsgQueryAck) Kind() string { return "abdQueryAck" }

func putEntries(b *wire.Buffer, es []Entry) {
	b.PutUvarint(uint64(len(es)))
	for _, e := range es {
		b.PutInt(e.Owner)
		b.PutVarint(e.Seq)
		b.PutBytes(e.Val)
	}
}

func getEntries(d *wire.Decoder) []Entry {
	// A serialized entry is at least 3 bytes (owner, seq, val length).
	n := d.Count(3)
	if n == 0 {
		return nil
	}
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Owner: d.Int(), Seq: d.Varint(), Val: d.Bytes()}
	}
	return es
}

func genEntries(rng *rand.Rand) []Entry {
	n := rng.Intn(5)
	if n == 0 {
		return nil
	}
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Owner: rng.Intn(16), Seq: rng.Int63n(1 << 30), Val: wire.GenPayload(rng)}
	}
	return es
}

// Wire tags 64–67 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 64, Proto: MsgStore{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgStore)
			b.PutVarint(msg.ReqID)
			putEntries(b, msg.Entries)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgStore{ReqID: d.Varint(), Entries: getEntries(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgStore{ReqID: rng.Int63(), Entries: genEntries(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 65, Proto: MsgStoreAck{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgStoreAck).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgStoreAck{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgStoreAck{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 66, Proto: MsgQuery{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgQuery).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgQuery{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgQuery{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 67, Proto: MsgQueryAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgQueryAck)
			b.PutVarint(msg.ReqID)
			putEntries(b, msg.Entries)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgQueryAck{ReqID: d.Varint(), Entries: getEntries(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgQueryAck{ReqID: rng.Int63(), Entries: genEntries(rng)}
		},
	})
}

type collectState struct {
	count   int
	entries []Entry
}

// Store is one node's view of the n emulated registers.
type Store struct {
	rt     rt.Runtime
	id     int
	n      int
	quorum int

	regs    []Entry
	nextReq int64
	acks    map[int64]int
	queries map[int64]*collectState
}

// New creates the store; register it as the node's handler (or route
// messages into HandleMessage from a multiplexing handler).
func New(r rt.Runtime) *Store {
	n := r.N()
	s := &Store{
		rt:      r,
		id:      r.ID(),
		n:       n,
		quorum:  n - r.F(),
		regs:    make([]Entry, n),
		acks:    make(map[int64]int),
		queries: make(map[int64]*collectState),
	}
	for i := range s.regs {
		s.regs[i] = Entry{Owner: i}
	}
	return s
}

// HandleMessage implements rt.Handler. It returns normally for unknown
// messages so it can back a multiplexing handler; use Handle to detect
// consumption.
func (s *Store) HandleMessage(src int, m rt.Message) { s.Handle(src, m) }

// Handle processes a message and reports whether it was an abd message.
func (s *Store) Handle(src int, m rt.Message) bool {
	switch msg := m.(type) {
	case MsgStore:
		for _, e := range msg.Entries {
			s.adopt(e)
		}
		s.rt.Send(src, MsgStoreAck{ReqID: msg.ReqID})
	case MsgStoreAck:
		if _, ok := s.acks[msg.ReqID]; ok {
			s.acks[msg.ReqID]++
		}
	case MsgQuery:
		s.rt.Send(src, MsgQueryAck{ReqID: msg.ReqID, Entries: append([]Entry(nil), s.regs...)})
	case MsgQueryAck:
		st, ok := s.queries[msg.ReqID]
		if !ok {
			return true
		}
		st.count++
		for _, e := range msg.Entries {
			s.adopt(e)
			if e.newer(st.entries[e.Owner]) {
				st.entries[e.Owner] = e
			}
		}
	default:
		return false
	}
	return true
}

func (s *Store) adopt(e Entry) {
	if e.Owner < 0 || e.Owner >= s.n {
		return
	}
	if e.newer(s.regs[e.Owner]) {
		s.regs[e.Owner] = e
	}
}

// store pushes entries to a quorum.
func (s *Store) store(entries []Entry) error {
	var req int64
	s.rt.Atomic(func() {
		for _, e := range entries {
			s.adopt(e)
		}
		s.nextReq++
		req = s.nextReq
		s.acks[req] = 0
	})
	s.rt.Broadcast(MsgStore{ReqID: req, Entries: entries})
	return s.rt.WaitUntilThen("abd store quorum",
		func() bool { return s.acks[req] >= s.quorum },
		func() { delete(s.acks, req) })
}

// Write writes val into this node's own register (one quorum round, the
// paper's O(D) update cost for [19]-style algorithms).
func (s *Store) Write(val []byte) error {
	if s.rt.Crashed() {
		return rt.ErrCrashed
	}
	var e Entry
	s.rt.Atomic(func() {
		e = Entry{Owner: s.id, Seq: s.regs[s.id].Seq + 1, Val: val}
	})
	return s.store([]Entry{e})
}

// Collect queries a quorum and returns the per-register maxima. With
// writeBack, the joined vector is pushed back to a quorum before
// returning, which is what makes double collects atomic.
func (s *Store) Collect(writeBack bool) ([]Entry, error) {
	if s.rt.Crashed() {
		return nil, rt.ErrCrashed
	}
	var req int64
	var st *collectState
	s.rt.Atomic(func() {
		s.nextReq++
		req = s.nextReq
		st = &collectState{entries: make([]Entry, s.n)}
		for i := range st.entries {
			st.entries[i] = Entry{Owner: i}
		}
		s.queries[req] = st
	})
	s.rt.Broadcast(MsgQuery{ReqID: req})
	var out []Entry
	err := s.rt.WaitUntilThen("abd collect quorum",
		func() bool { return st.count >= s.quorum },
		func() {
			out = append([]Entry(nil), st.entries...)
			delete(s.queries, req)
		})
	if err != nil {
		return nil, err
	}
	if writeBack {
		if err := s.store(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Read atomically reads the register of owner: query a quorum, take the
// freshest entry, write it back to a quorum, then return it.
func (s *Store) Read(owner int) (Entry, error) {
	entries, err := s.Collect(false)
	if err != nil {
		return Entry{}, err
	}
	e := entries[owner]
	if err := s.store([]Entry{e}); err != nil {
		return Entry{}, err
	}
	return e, nil
}
