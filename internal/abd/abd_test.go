package abd_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"mpsnap/internal/abd"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

func deploy(n, f int, seed int64) (*sim.World, []*abd.Store) {
	w := sim.New(sim.Config{N: n, F: f, Seed: seed})
	stores := make([]*abd.Store, n)
	for i := 0; i < n; i++ {
		stores[i] = abd.New(w.Runtime(i))
		w.SetHandler(i, stores[i])
	}
	return w, stores
}

func TestWriteThenRead(t *testing.T) {
	w, st := deploy(3, 1, 1)
	w.GoNode("w0", 0, func(p *sim.Proc) {
		if err := st[0].Write([]byte("a")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	w.GoNode("r1", 1, func(p *sim.Proc) {
		_ = p.Sleep(10 * rt.TicksPerD)
		e, err := st[1].Read(0)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if string(e.Val) != "a" || e.Seq != 1 {
			t.Errorf("read = %+v", e)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadYourCompletedWrites(t *testing.T) {
	// Regularity/atomicity: once a write completes, every subsequent
	// read (by anyone) returns it or something newer.
	prop := func(seed int64) bool {
		w, st := deploy(5, 2, seed)
		// Plain shared variable: the simulation is single-threaded, and
		// procs must never block on raw Go channels (that would bypass
		// the scheduler's park protocol).
		var completed int64
		w.GoNode("writer", 0, func(p *sim.Proc) {
			for k := 1; k <= 5; k++ {
				if err := st[0].Write([]byte(fmt.Sprintf("v%d", k))); err != nil {
					return
				}
				completed = int64(k)
				_ = p.Sleep(rt.Ticks(seed%1000 + 100))
			}
		})
		ok := true
		w.GoNode("reader", 1, func(p *sim.Proc) {
			for k := 0; k < 8; k++ {
				floor := completed
				e, err := st[1].Read(0)
				if err != nil {
					return
				}
				if e.Seq < floor {
					ok = false
					return
				}
				_ = p.Sleep(rt.Ticks(300))
			}
		})
		if err := w.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNoStaleReadAfterRead(t *testing.T) {
	// Atomicity (no new/old inversion): two sequential reads never go
	// backwards, even while a write is in flight.
	w, st := deploy(3, 1, 7)
	w.GoNode("writer", 0, func(p *sim.Proc) {
		for k := 1; k <= 10; k++ {
			if err := st[0].Write([]byte(fmt.Sprintf("v%d", k))); err != nil {
				return
			}
		}
	})
	w.GoNode("reader", 1, func(p *sim.Proc) {
		var last int64
		for k := 0; k < 20; k++ {
			e, err := st[1].Read(0)
			if err != nil {
				return
			}
			if e.Seq < last {
				t.Errorf("read regressed: %d after %d", e.Seq, last)
				return
			}
			last = e.Seq
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectSeesCompletedWrites(t *testing.T) {
	w, st := deploy(5, 2, 3)
	w.GoNode("driver", 0, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := st[0].Write([]byte("x")); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		entries, err := st[0].Collect(false)
		if err != nil {
			t.Errorf("collect: %v", err)
			return
		}
		if entries[0].Seq != 3 {
			t.Errorf("collect misses own completed writes: %+v", entries[0])
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestToleratesFCrashes(t *testing.T) {
	w, st := deploy(5, 2, 9)
	w.CrashAt(3, 0)
	w.CrashAt(4, 0)
	w.GoNode("w0", 0, func(p *sim.Proc) {
		if err := st[0].Write([]byte("a")); err != nil {
			t.Errorf("write with f crashed: %v", err)
		}
		if _, err := st[0].Read(0); err != nil {
			t.Errorf("read with f crashed: %v", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
