// Package byzaso implements the Byzantine-tolerant atomic snapshot object
// of the paper's framework (Section V outlines it: "integrates reliable
// broadcast [18] with our framework"). The detailed pseudocode lives in the
// authors' technical report, which is not part of the paper text; this
// package is a documented reconstruction (see DESIGN.md) that preserves the
// framework's structure and is validated against the same (A1)-(A4)
// linearizability checker as the crash-tolerant algorithm. It requires
// n > 3f.
//
// Byzantine adaptations of the equivalence quorum framework:
//
//   - Values are disseminated with Bracha reliable broadcast, so a
//     Byzantine writer cannot equivocate its segment; a value is accepted
//     only if its timestamp's writer equals the RBC origin.
//   - V[j], node i's view of what j knows, is built from "have"
//     announcements that j broadcasts when it RBC-delivers a value. HAVEs
//     from j are admitted into V[j] in j's announcement (FIFO) order and
//     only once i itself has delivered the value; this keeps V_i[j] a
//     prefix of j's announcement stream, which is what makes equivalence
//     sets of any two EQ quorums comparable through their common *correct*
//     member (n > 3f makes every two (n-f)-quorums intersect in ≥ f+1
//     nodes, hence in a correct one).
//   - maxTag is corroborated: tags are RBC-announced, and a node's maxTag
//     M is the (f+1)-th largest per-origin announced tag, so f Byzantine
//     nodes cannot inflate it. Honest nodes ladder their announcements at
//     most one past their corroborated M, bounding Byzantine tag racing to
//     one step per round trip.
//   - readTag takes the (f+1)-th largest of n-f reported Ms — large enough
//     to cover every completed operation's tag (quorum intersection gives
//     f+1 reporters that acknowledged it) and small enough that at least
//     one honest node vouches for it (liveness against inflated lies).
//   - There is no view borrowing: a renewal loops lattice operations until
//     one is good. Borrowed views cannot be authenticated without
//     signatures; the loop terminates whenever tags quiesce and is exercised
//     by the same workloads as the crash algorithm.
package byzaso

import (
	"math/rand"
	"sort"

	"mpsnap/internal/core"
	"mpsnap/internal/rbc"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// MsgHave announces that the sender has RBC-delivered the value ts.
type MsgHave struct{ TS core.Timestamp }

// Kind implements rt.Message.
func (MsgHave) Kind() string { return "have" }

// MsgReadTag asks for the responder's corroborated maxTag.
type MsgReadTag struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgReadTag) Kind() string { return "byzReadTag" }

// MsgReadAck reports the responder's corroborated maxTag.
type MsgReadAck struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgReadAck) Kind() string { return "byzReadAck" }

// MsgTagQuery asks the responder to acknowledge once its corroborated
// maxTag reaches Tag.
type MsgTagQuery struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgTagQuery) Kind() string { return "tagQuery" }

// MsgTagAck acknowledges a MsgTagQuery.
type MsgTagAck struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgTagAck) Kind() string { return "tagAck" }

// Wire tags 96–100 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 96, Proto: MsgHave{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutTimestamp(b, m.(MsgHave).TS) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgHave{TS: wire.GetTimestamp(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgHave{TS: wire.GenTimestamp(rng)} },
	})
	wire.Register(wire.Codec{
		Tag: 97, Proto: MsgReadTag{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgReadTag).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgReadTag{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgReadTag{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 98, Proto: MsgReadAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgReadAck)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.Tag)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgReadAck{ReqID: d.Varint(), Tag: wire.GetTag(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgReadAck{ReqID: rng.Int63(), Tag: core.Tag(rng.Int63n(1 << 20))}
		},
	})
	wire.Register(wire.Codec{
		Tag: 99, Proto: MsgTagQuery{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgTagQuery)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.Tag)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgTagQuery{ReqID: d.Varint(), Tag: wire.GetTag(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgTagQuery{ReqID: rng.Int63(), Tag: core.Tag(rng.Int63n(1 << 20))}
		},
	})
	wire.Register(wire.Codec{
		Tag: 100, Proto: MsgTagAck{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgTagAck).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgTagAck{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgTagAck{ReqID: rng.Int63()} },
	})
}

type readState struct {
	acks map[int]core.Tag
}

type pendingQuery struct {
	src   int
	reqID int64
	tag   core.Tag
}

// Stats counts a node's operations and lattice activity.
type Stats struct {
	Updates    int64
	Scans      int64
	LatticeOps int64
}

// Node is one Byzantine ASO node.
type Node struct {
	rt     rt.Runtime
	id     int
	n, f   int
	quorum int // n - f

	rbc *rbc.RBC

	log       *core.ValueLog // V[id] = delivered values; V[j] via HAVE prefixes
	haveQueue [][]core.Timestamp

	announced    []core.Tag // per-origin largest RBC-delivered tag announcement
	maxTag       core.Tag   // corroborated: (f+1)-th largest of announced
	selfGoal     core.Tag   // largest tag this node wants announced (ladder target)
	lastLaddered core.Tag   // largest tag already RBC-announced by this node

	nextReq    int64
	readAcks   map[int64]*readState
	tagAcks    map[int64]map[int]bool
	tagQueries []pendingQuery
	haveCount  map[core.Timestamp]int

	wait  *core.EQTracker
	stats Stats

	// Operation instrumentation (see obs.go); owned by the client thread.
	obs   rt.Observer
	opSeq int64
	curOp opCtx

	// OnGoodLattice observes good lattice operations (for tests).
	OnGoodLattice func(tag core.Tag, view core.View)
}

// New creates the Byzantine ASO node for the runtime (panics unless
// n > 3f). Register it as the node's message handler.
func New(r rt.Runtime) *Node {
	n := r.N()
	nd := &Node{
		rt:        r,
		id:        r.ID(),
		n:         n,
		f:         r.F(),
		quorum:    n - r.F(),
		log:       core.NewValueLog(n, r.ID()),
		haveQueue: make([][]core.Timestamp, n),
		announced: make([]core.Tag, n),
		readAcks:  make(map[int64]*readState),
		tagAcks:   make(map[int64]map[int]bool),
		haveCount: make(map[core.Timestamp]int),
	}
	nd.rbc = rbc.New(r, nd.onDeliver)
	return nd
}

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats {
	var s Stats
	nd.rt.Atomic(func() { s = nd.stats })
	return s
}

// HandleMessage implements rt.Handler.
func (nd *Node) HandleMessage(src int, m rt.Message) {
	if nd.rbc.Handle(src, m) {
		return
	}
	switch msg := m.(type) {
	case MsgHave:
		nd.haveQueue[src] = append(nd.haveQueue[src], msg.TS)
		nd.drainHaves(src)
	case MsgReadTag:
		nd.rt.Send(src, MsgReadAck{ReqID: msg.ReqID, Tag: nd.maxTag})
	case MsgReadAck:
		if st, ok := nd.readAcks[msg.ReqID]; ok {
			if _, dup := st.acks[src]; !dup {
				st.acks[src] = msg.Tag
			}
		}
	case MsgTagQuery:
		if nd.maxTag >= msg.Tag {
			nd.rt.Send(src, MsgTagAck{ReqID: msg.ReqID})
		} else {
			nd.tagQueries = append(nd.tagQueries, pendingQuery{src: src, reqID: msg.ReqID, tag: msg.Tag})
		}
	case MsgTagAck:
		if acks, ok := nd.tagAcks[msg.ReqID]; ok {
			acks[src] = true
		}
	}
}

// onDeliver handles RBC deliveries (runs in the handler's atomic context).
func (nd *Node) onDeliver(id rbc.ID, payload []byte) {
	kind, v, t, err := decodePayload(payload)
	if err != nil {
		return // malformed Byzantine payload: ignore
	}
	switch kind {
	case payloadValue:
		if v.TS.Writer != id.Origin || v.TS.Tag < 1 {
			return // forged writer or invalid tag: ignore
		}
		if !nd.log.AddSelf(v) {
			return
		}
		if nd.wait != nil {
			nd.wait.OnAdd(nd.id, v, true, true)
		}
		nd.bumpHave(v.TS)
		nd.rt.Broadcast(MsgHave{TS: v.TS})
		// Newly deliverable HAVEs may now be admissible.
		for j := 0; j < nd.n; j++ {
			if j != nd.id {
				nd.drainHaves(j)
			}
		}
	case payloadTag:
		if t > nd.announced[id.Origin] {
			nd.announced[id.Origin] = t
			nd.recomputeMaxTag()
		}
	}
}

// drainHaves admits src's queued HAVEs into V[src] in announcement order,
// stopping at the first value this node has not itself delivered yet.
func (nd *Node) drainHaves(src int) {
	if src == nd.id {
		// Own HAVEs are implicit: V[id] is the delivered set itself.
		nd.haveQueue[src] = nil
		return
	}
	q := nd.haveQueue[src]
	for len(q) > 0 {
		ts := q[0]
		p, ok := nd.log.Get(ts)
		if !ok {
			break
		}
		q = q[1:]
		v := core.Value{TS: ts, Payload: p}
		if newToJ, _ := nd.log.Add(src, v); newToJ {
			if nd.wait != nil {
				nd.wait.OnAdd(src, v, true, false)
			}
			nd.bumpHave(ts)
		}
	}
	nd.haveQueue[src] = q
}

// bumpHave counts distinct holders of ts for in-flight update waits.
func (nd *Node) bumpHave(ts core.Timestamp) {
	if _, tracked := nd.haveCount[ts]; tracked {
		nd.haveCount[ts]++
	}
}

// recomputeMaxTag sets maxTag to the (f+1)-th largest announced tag,
// answers pending tag queries, and advances this node's announcement
// ladder.
func (nd *Node) recomputeMaxTag() {
	tags := append([]core.Tag(nil), nd.announced...)
	sort.Slice(tags, func(i, j int) bool { return tags[i] > tags[j] })
	m := tags[nd.f]
	if m <= nd.maxTag {
		nd.ladder()
		return
	}
	nd.maxTag = m
	keep := nd.tagQueries[:0]
	for _, q := range nd.tagQueries {
		if nd.maxTag >= q.tag {
			nd.rt.Send(q.src, MsgTagAck{ReqID: q.reqID})
		} else {
			keep = append(keep, q)
		}
	}
	nd.tagQueries = keep
	nd.ladder()
}

// ladder announces the next tag toward the largest tag seen, at most one
// step beyond the corroborated maxTag. This propagates honest tags while
// limiting a Byzantine tag race to one step per announcement round.
func (nd *Node) ladder() {
	target := nd.selfGoal
	for _, a := range nd.announced {
		if a > target {
			target = a
		}
	}
	if target > nd.maxTag+1 {
		target = nd.maxTag + 1
	}
	if target > nd.announced[nd.id] && target > nd.lastLaddered {
		nd.lastLaddered = target
		nd.rbc.Broadcast(encodeTag(target))
	}
}
