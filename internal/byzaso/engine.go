package byzaso

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

// The Byzantine ASO registers as a linearizable engine requiring n > 3f.
func init() {
	engine.Register(engine.Info{
		Name:      "byzaso",
		Doc:       "Byzantine-tolerant atomic snapshot with Bracha reliable broadcast (n > 3f)",
		Byzantine: true,
		New:       func(r rt.Runtime) engine.Engine { return New(r) },
	})
}
