package byzaso_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mpsnap/internal/byzaso"
	"mpsnap/internal/core"
	"mpsnap/internal/harness"
	"mpsnap/internal/rbc"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

func build(cfg sim.Config) *harness.Cluster {
	return harness.Build(cfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := byzaso.New(r)
		return nd, nd
	})
}

func TestFailureFreeLinearizable(t *testing.T) {
	n, f := 7, 2
	c := build(sim.Config{N: n, F: f, Seed: 1})
	for i := 0; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 3; k++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, err := o.Scan(); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureFreeConstantTime(t *testing.T) {
	// With no Byzantine nodes the algorithm should complete operations
	// in constant time (independent of n), like the crash version.
	for _, n := range []int{4, 7, 13} {
		f := (n - 1) / 3
		c := build(sim.Config{N: n, F: f, Seed: 2, Delay: sim.Constant{Ticks: rt.TicksPerD}})
		for i := 0; i < n; i++ {
			c.Client(i, func(o *harness.OpRunner) {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
				}
				if _, err := o.Scan(); err != nil {
					t.Errorf("scan: %v", err)
				}
			})
		}
		h, err := c.MustLinearizable()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st := harness.Latencies(h)
		const maxD = 30.0
		if st.WorstUpdate > maxD || st.WorstScan > maxD {
			t.Errorf("n=%d: worst update %.1fD scan %.1fD exceed constant budget", n, st.WorstUpdate, st.WorstScan)
		}
	}
}

func TestSilentByzantine(t *testing.T) {
	// f nodes silent from the start (the crash-like Byzantine strategy).
	n, f := 7, 2
	c := build(sim.Config{N: n, F: f, Seed: 3})
	for i := 0; i < f; i++ {
		c.W.CrashAt(i, 0) // silent = crashed, from the harness viewpoint
	}
	for i := f; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
			}
			if _, err := o.Scan(); err != nil {
				t.Errorf("scan: %v", err)
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

// byzBehavior wraps the honest protocol but injects malicious replies.
type byzBehavior struct {
	inner *byzaso.Node
	r     rt.Runtime
	mode  string
	steps int
}

func (b *byzBehavior) HandleMessage(src int, m rt.Message) {
	switch b.mode {
	case "readack-liar":
		if q, ok := m.(byzaso.MsgReadTag); ok {
			b.r.Send(src, byzaso.MsgReadAck{ReqID: q.ReqID, Tag: 1 << 40})
			return
		}
	case "have-spammer":
		// Participate normally but also spray HAVEs for values that do
		// not exist.
		if b.steps < 50 {
			b.steps++
			b.r.Broadcast(byzaso.MsgHave{TS: core.Timestamp{Tag: core.Tag(1000 + b.steps), Writer: (src + 1) % b.r.N()}})
		}
	}
	b.inner.HandleMessage(src, m)
}

func runWithByz(t *testing.T, mode string, seed int64) {
	t.Helper()
	n, f := 7, 2
	c := harness.Build(sim.Config{N: n, F: f, Seed: seed}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := byzaso.New(r)
		if r.ID() < f {
			return &byzBehavior{inner: nd, r: r, mode: mode}, nd
		}
		return nd, nd
	})
	for i := f; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 2; k++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, err := o.Scan(); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatalf("mode=%s seed=%d: %v", mode, seed, err)
	}
}

func TestReadAckLiars(t *testing.T) {
	// Byzantine responders report absurd maxTags; the (f+1)-th largest
	// selection must keep scans both live and safe.
	for seed := int64(0); seed < 5; seed++ {
		runWithByz(t, "readack-liar", seed)
	}
}

func TestHaveSpammers(t *testing.T) {
	// HAVE announcements for values that are never RBC-delivered must
	// neither block honest operations nor leak into views.
	for seed := int64(0); seed < 5; seed++ {
		runWithByz(t, "have-spammer", seed)
	}
}

func TestTagRatchetBounded(t *testing.T) {
	// Byzantine nodes ratchet tags upward; corroboration limits them to
	// one step per round trip, and honest operations keep completing.
	n, f := 7, 2
	c := harness.Build(sim.Config{N: n, F: f, Seed: 11}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := byzaso.New(r)
		return nd, nd
	})
	// Drive the ratchet from a scenario proc using raw RBC instances on
	// the Byzantine nodes' runtimes (they share the nodes' channels).
	for b := 0; b < f; b++ {
		b := b
		layer := rbc.New(c.W.Runtime(b), nil)
		c.W.Go(fmt.Sprintf("ratchet-%d", b), func(p *sim.Proc) {
			for step := 1; step <= 15; step++ {
				// Announce an ever-growing tag (encoded like the
				// protocol's tag payloads).
				layer.Broadcast(encodeTagForTest(core.Tag(step)))
				if err := p.Sleep(500); err != nil {
					return
				}
			}
		})
	}
	for i := f; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 2; k++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, err := o.Scan(); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

// encodeTagForTest mirrors the package's tag payload encoding.
func encodeTagForTest(tag core.Tag) []byte {
	buf := make([]byte, 9)
	buf[0] = 2
	for i := 0; i < 8; i++ {
		buf[8-i] = byte(tag >> (8 * i))
	}
	return buf
}

func TestForgedWriterRejected(t *testing.T) {
	// A Byzantine node RBC-broadcasts a value claiming an honest writer.
	// It must never appear in any scan (the checker would flag a value no
	// recorded update wrote).
	n, f := 7, 2
	c := build(sim.Config{N: n, F: f, Seed: 13})
	forger := rbc.New(c.W.Runtime(0), nil)
	c.W.Go("forger", func(p *sim.Proc) {
		// Forge a value pretending to be node 3 (payload format of the
		// protocol: kind=1, tag, writer, payload).
		buf := make([]byte, 13+4)
		buf[0] = 1
		buf[8] = 1  // tag = 1
		buf[12] = 3 // writer = 3 ≠ origin 0
		copy(buf[13:], "evil")
		forger.Broadcast(buf)
	})
	for i := f; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
			}
			snap, err := o.Scan()
			if err != nil {
				t.Errorf("scan: %v", err)
				return
			}
			for seg, v := range snap {
				if v == "evil" {
					t.Errorf("forged value leaked into segment %d", seg)
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizableUnderMixedByzantine(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 7 + int(seed%3)*3
		f := (n - 1) / 3
		c := harness.Build(sim.Config{N: n, F: f, Seed: seed}, func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := byzaso.New(r)
			if r.ID() < f {
				mode := "readack-liar"
				if r.ID()%2 == 1 {
					mode = "have-spammer"
				}
				return &byzBehavior{inner: nd, r: r, mode: mode}, nd
			}
			return nd, nd
		})
		for i := f; i < n; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				rng := rand.New(rand.NewSource(seed*91 + int64(i)))
				for k := 0; k < 3; k++ {
					var err error
					if rng.Intn(2) == 0 {
						_, err = o.Update()
					} else {
						_, err = o.Scan()
					}
					if err != nil {
						return
					}
					_ = o.P.Sleep(rt.Ticks(rng.Intn(3000)))
				}
			})
		}
		_ = rng
		if _, err := c.MustLinearizable(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
