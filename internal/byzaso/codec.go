package byzaso

import (
	"encoding/binary"
	"errors"

	"mpsnap/internal/core"
)

// Inner payload codec for the RBC layer. Two payload kinds exist: values
// (an UPDATE's value–timestamp pair) and tag announcements.

const (
	payloadValue byte = 1
	payloadTag   byte = 2
)

var errBadPayload = errors.New("byzaso: malformed rbc payload")

func encodeValue(v core.Value) []byte {
	buf := make([]byte, 1+8+4+len(v.Payload))
	buf[0] = payloadValue
	binary.BigEndian.PutUint64(buf[1:], uint64(v.TS.Tag))
	binary.BigEndian.PutUint32(buf[9:], uint32(v.TS.Writer))
	copy(buf[13:], v.Payload)
	return buf
}

func encodeTag(t core.Tag) []byte {
	buf := make([]byte, 1+8)
	buf[0] = payloadTag
	binary.BigEndian.PutUint64(buf[1:], uint64(t))
	return buf
}

func decodePayload(b []byte) (kind byte, v core.Value, t core.Tag, err error) {
	if len(b) < 1 {
		return 0, v, 0, errBadPayload
	}
	switch b[0] {
	case payloadValue:
		if len(b) < 13 {
			return 0, v, 0, errBadPayload
		}
		v.TS.Tag = core.Tag(binary.BigEndian.Uint64(b[1:]))
		v.TS.Writer = int(int32(binary.BigEndian.Uint32(b[9:])))
		v.Payload = append([]byte(nil), b[13:]...)
		return payloadValue, v, 0, nil
	case payloadTag:
		if len(b) < 9 {
			return 0, v, 0, errBadPayload
		}
		return payloadTag, v, core.Tag(binary.BigEndian.Uint64(b[1:])), nil
	}
	return 0, v, 0, errBadPayload
}
