package byzaso

import (
	"bytes"
	"testing"

	"mpsnap/internal/core"
)

// FuzzDecodePayload: Byzantine nodes choose these bytes; the decoder must
// never panic, and well-formed payloads must round-trip.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeTag(7))
	f.Add(encodeValue(core.Value{TS: core.Timestamp{Tag: 3, Writer: 1}, Payload: []byte("p")}))
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, v, tag, err := decodePayload(data)
		if err != nil {
			return
		}
		switch kind {
		case payloadValue:
			re := encodeValue(v)
			_, v2, _, err2 := decodePayload(re)
			if err2 != nil || v2.TS != v.TS || !bytes.Equal(v2.Payload, v.Payload) {
				t.Fatalf("value re-encode mismatch: %+v vs %+v (err %v)", v, v2, err2)
			}
		case payloadTag:
			_, _, tag2, err2 := decodePayload(encodeTag(tag))
			if err2 != nil || tag2 != tag {
				t.Fatalf("tag re-encode mismatch: %d vs %d (err %v)", tag, tag2, err2)
			}
		default:
			t.Fatalf("decoder returned unknown kind %d without error", kind)
		}
	})
}
