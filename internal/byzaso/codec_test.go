package byzaso

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap/internal/core"
)

func TestCodecRoundTrip(t *testing.T) {
	v := core.Value{TS: core.Timestamp{Tag: 42, Writer: 7}, Payload: []byte("payload")}
	kind, got, _, err := decodePayload(encodeValue(v))
	if err != nil || kind != payloadValue {
		t.Fatalf("decode: kind=%d err=%v", kind, err)
	}
	if got.TS != v.TS || !bytes.Equal(got.Payload, v.Payload) {
		t.Fatalf("roundtrip: %+v", got)
	}

	kind, _, tag, err := decodePayload(encodeTag(99))
	if err != nil || kind != payloadTag || tag != 99 {
		t.Fatalf("tag roundtrip: kind=%d tag=%d err=%v", kind, tag, err)
	}
}

func TestCodecEmptyPayload(t *testing.T) {
	v := core.Value{TS: core.Timestamp{Tag: 1, Writer: 0}}
	_, got, _, err := decodePayload(encodeValue(v))
	if err != nil || len(got.Payload) != 0 {
		t.Fatalf("empty payload: %+v err=%v", got, err)
	}
}

// TestCodecRejectsGarbage: Byzantine nodes can RBC arbitrary bytes; the
// decoder must fail cleanly (never panic) on malformed input.
func TestCodecRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {0}, {3}, {1, 2}, {1, 0, 0, 0, 0, 0, 0, 0, 0}, {2, 1}} {
		if _, _, _, err := decodePayload(b); err == nil && len(b) > 0 && (b[0] == 1 || b[0] == 2) && len(b) >= 13 {
			continue // well-formed enough
		} else if err == nil {
			t.Fatalf("garbage %v accepted", b)
		}
	}
	prop := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("decoder panicked")
			}
		}()
		_, _, _, _ = decodePayload(raw)
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCodecNegativeWriterRoundTrip(t *testing.T) {
	// Writers are int32-encoded; out-of-range writers are rejected at the
	// protocol layer, but the codec itself must round-trip them.
	v := core.Value{TS: core.Timestamp{Tag: 1, Writer: -1}, Payload: nil}
	_, got, _, err := decodePayload(encodeValue(v))
	if err != nil || got.TS.Writer != -1 {
		t.Fatalf("negative writer: %+v err=%v", got, err)
	}
}
