package byzaso

import (
	"sort"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
)

// announceTag raises the node's announcement goal to r and advances the
// ladder. Must run in an atomic context.
func (nd *Node) announceTag(r core.Tag) {
	if r > nd.selfGoal {
		nd.selfGoal = r
	}
	nd.ladder()
}

// tagQuorum broadcasts a MsgTagQuery for tag r and waits until n-f nodes
// acknowledge that their corroborated maxTag reached r.
func (nd *Node) tagQuorum(r core.Tag) error {
	var req int64
	nd.rt.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		nd.tagAcks[req] = make(map[int]bool)
	})
	nd.rt.Broadcast(MsgTagQuery{ReqID: req, Tag: r})
	return nd.rt.WaitUntilThen("byz tag quorum",
		func() bool { return len(nd.tagAcks[req]) >= nd.quorum },
		func() { delete(nd.tagAcks, req) })
}

// latticeLoop runs lattice operations with nondecreasing tags until one is
// good (the renewal of the Byzantine variant: no borrowing, see the
// package comment).
func (nd *Node) latticeLoop(r core.Tag) (core.View, error) {
	for {
		nd.phase("lattice")
		nd.rt.Atomic(func() {
			nd.stats.LatticeOps++
			nd.announceTag(r)
		})
		if err := nd.tagQuorum(r); err != nil {
			return core.View{}, err
		}
		var tracker *core.EQTracker
		nd.rt.Atomic(func() {
			tracker = core.NewEQTrackerFromLog(nd.log, r, nd.quorum)
			nd.wait = tracker
		})
		var good bool
		var view core.View
		err := nd.rt.WaitUntilThen("byz EQ predicate",
			tracker.Satisfied,
			func() {
				nd.wait = nil
				if nd.maxTag <= r {
					good = true
					// Freeze the quorum-held prefix so the view is a
					// zero-copy alias of the log (see core.ValueLog).
					nd.log.AdvanceFrontier(r)
					view = nd.log.ViewLE(r)
					if nd.OnGoodLattice != nil {
						nd.OnGoodLattice(r, view)
					}
				} else {
					r = nd.maxTag
				}
			})
		if err != nil {
			return core.View{}, err
		}
		if good {
			return view, nil
		}
	}
}

// Update writes payload to the caller's segment: RBC the value and its tag,
// wait until n-f nodes hold the value and acknowledge the tag, then run
// the lattice phase.
func (nd *Node) Update(payload []byte) error {
	_, _, err := nd.UpdateWithView(payload)
	return err
}

// UpdateWithView is Update, additionally returning the final lattice view
// and the written value's timestamp (used by the Byzantine SSO).
func (nd *Node) UpdateWithView(payload []byte) (view core.View, ts core.Timestamp, err error) {
	if nd.rt.Crashed() {
		return core.View{}, core.Timestamp{}, rt.ErrCrashed
	}
	c := nd.opStart("update")
	defer func() { nd.opEnd(c, err) }()
	nd.rt.Atomic(func() {
		nd.stats.Updates++
		ts = core.Timestamp{Tag: nd.maxTag + 1, Writer: nd.id}
		nd.haveCount[ts] = 0
		nd.rbc.Broadcast(encodeValue(core.Value{TS: ts, Payload: payload}))
		nd.announceTag(ts.Tag)
	})
	// Stability: the value is held by a quorum (so every later EQ view
	// can contain it) and the tag is corroborated at a quorum (so every
	// later readTag returns at least it).
	var req int64
	nd.rt.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		nd.tagAcks[req] = make(map[int]bool)
	})
	nd.rt.Broadcast(MsgTagQuery{ReqID: req, Tag: ts.Tag})
	err = nd.rt.WaitUntilThen("byz update stable",
		func() bool { return len(nd.tagAcks[req]) >= nd.quorum && nd.haveCount[ts] >= nd.quorum },
		func() {
			delete(nd.tagAcks, req)
			delete(nd.haveCount, ts)
		})
	if err != nil {
		return core.View{}, ts, err
	}
	nd.phase("stable")
	var r core.Tag
	nd.rt.Atomic(func() {
		r = ts.Tag
		if nd.maxTag > r {
			r = nd.maxTag
		}
	})
	view, err = nd.latticeLoop(r)
	return view, ts, err
}

// RefreshView runs one readTag + lattice loop and returns the obtained
// view (used by the Byzantine SSO to catch up until its own value is
// visible).
func (nd *Node) RefreshView() (core.View, error) {
	r, err := nd.readTag()
	if err != nil {
		return core.View{}, err
	}
	return nd.latticeLoop(r)
}

// readTag collects n-f corroborated maxTags and selects the (f+1)-th
// largest: at least one honest node vouches for it (liveness) and every
// completed operation's tag is covered by quorum intersection (safety).
func (nd *Node) readTag() (core.Tag, error) {
	nd.phase("readTag")
	var req int64
	var st *readState
	nd.rt.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		st = &readState{acks: make(map[int]core.Tag)}
		nd.readAcks[req] = st
	})
	nd.rt.Broadcast(MsgReadTag{ReqID: req})
	var r core.Tag
	err := nd.rt.WaitUntilThen("byz readTag quorum",
		func() bool { return len(st.acks) >= nd.quorum },
		func() {
			tags := make([]core.Tag, 0, len(st.acks))
			for _, t := range st.acks {
				tags = append(tags, t)
			}
			sort.Slice(tags, func(i, j int) bool { return tags[i] > tags[j] })
			r = tags[nd.f]
			if nd.maxTag > r {
				r = nd.maxTag // own corroborated maxTag is always safe
			}
			delete(nd.readAcks, req)
		})
	return r, err
}

// Scan returns one entry per segment; nil marks ⊥.
func (nd *Node) Scan() (res [][]byte, err error) {
	if nd.rt.Crashed() {
		return nil, rt.ErrCrashed
	}
	c := nd.opStart("scan")
	defer func() { nd.opEnd(c, err) }()
	nd.rt.Atomic(func() { nd.stats.Scans++ })
	r, err := nd.readTag()
	if err != nil {
		return nil, err
	}
	view, err := nd.latticeLoop(r)
	if err != nil {
		return nil, err
	}
	return view.Extract(nd.n), nil
}
