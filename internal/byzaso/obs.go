package byzaso

import "mpsnap/internal/rt"

// Operation instrumentation, mirroring internal/eqaso: one sequential
// client thread per node owns these fields, so no synchronization is
// needed; the observer itself must be concurrency-safe.

type opCtx struct {
	id    int64
	op    string
	start rt.Ticks
}

// SetObserver installs an operation observer. Events emitted: "update"
// and "scan" lifecycles with protocol phases "stable" (value held and tag
// corroborated at a quorum), "readTag", and "lattice" (one mark per
// lattice-loop round) in between.
func (nd *Node) SetObserver(o rt.Observer) { nd.obs = o }

func (nd *Node) opStart(op string) opCtx {
	nd.opSeq++
	c := opCtx{id: nd.opSeq, op: op, start: nd.rt.Now()}
	nd.curOp = c
	if nd.obs != nil {
		nd.obs.OnOp(rt.OpEvent{T: c.start, Node: nd.id, ID: c.id, Op: c.op, Phase: rt.PhaseStart})
	}
	return c
}

func (nd *Node) phase(name string) {
	if nd.obs == nil || nd.curOp.op == "" {
		return
	}
	nd.obs.OnOp(rt.OpEvent{T: nd.rt.Now(), Node: nd.id, ID: nd.curOp.id, Op: nd.curOp.op, Phase: name})
}

func (nd *Node) opEnd(c opCtx, err error) {
	nd.curOp = opCtx{}
	if nd.obs == nil {
		return
	}
	now := nd.rt.Now()
	nd.obs.OnOp(rt.OpEvent{
		T: now, Node: nd.id, ID: c.id, Op: c.op,
		Phase: rt.PhaseEnd, Dur: now - c.start, Err: err != nil,
	})
}
