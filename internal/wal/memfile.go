package wal

// MemFile is an in-memory File with power-cut semantics: bytes written
// become durable only when Sync succeeds. The simulator's restart fault
// and the crash-point tests use it to model exactly what a crashed node
// gets back — the synced prefix — without touching a real filesystem.
type MemFile struct {
	buf    []byte
	synced int
	// SyncHook, when set, runs before a sync takes effect; returning an
	// error fails the sync (the unsynced tail stays volatile). Crash-point
	// tests inject power cuts here.
	SyncHook func() error
}

// NewMemFile returns an empty in-memory WAL file.
func NewMemFile() *MemFile { return &MemFile{} }

// Write appends p (volatile until the next successful Sync).
func (f *MemFile) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

// Sync marks everything written so far durable.
func (f *MemFile) Sync() error {
	if f.SyncHook != nil {
		if err := f.SyncHook(); err != nil {
			return err
		}
	}
	f.synced = len(f.buf)
	return nil
}

// Len returns the total bytes written, durable or not.
func (f *MemFile) Len() int { return len(f.buf) }

// SyncedLen returns the durable byte count.
func (f *MemFile) SyncedLen() int { return f.synced }

// Bytes returns everything written (aliases the buffer; read-only).
func (f *MemFile) Bytes() []byte { return f.buf }

// Durable returns a copy of the synced prefix — what survives a crash.
func (f *MemFile) Durable() []byte {
	return append([]byte(nil), f.buf[:f.synced]...)
}

// Crash models the power cut: the unsynced tail is lost. The file can
// keep being written afterwards (the recovered node reopens it).
func (f *MemFile) Crash() {
	f.buf = f.buf[:f.synced]
}
