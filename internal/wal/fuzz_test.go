package wal

import (
	"bytes"
	"testing"

	"mpsnap/internal/core"
)

// FuzzWALReplay feeds arbitrary bytes through Replay and Recover:
// neither may panic, replay must stop at the first corrupt record, and
// the intact prefix must replay to the same state as the whole input's
// record sequence truncated at the stop point (prefix consistency).
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed log: values, checkpoint, prune, more values.
	mf := NewMemFile()
	w := NewWriter(mf, 1)
	live := core.NewValueLog(3, 0)
	for i, tag := range []core.Tag{2, 3, 5, 7} {
		v := val(tag, i%3)
		live.Add(i%3, v)
		w.AppendValue(i%3, v)
	}
	live.AdvanceFrontier(5)
	w.AppendCheckpoint(live.Frontier())
	w.AppendPrune(live.Frontier())
	w.AppendValue(1, val(11, 1))
	seed := append([]byte(nil), mf.Bytes()...)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                            // torn tail
	dup := append(append([]byte(nil), seed...), seed...) // duplicated records
	f.Add(dup)
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0x10 // bit flip mid-log
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4, 9, 9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("bounded input")
		}
		recs, intact, err := Replay(data)
		// Stop offset: sum of the framed sizes of the decoded records —
		// must agree with the reported intact-prefix length.
		off := 0
		for range recs {
			n := int(uint32(data[off])<<24 | uint32(data[off+1])<<16 | uint32(data[off+2])<<8 | uint32(data[off+3]))
			off += headerLen + n
		}
		if off != intact {
			t.Fatalf("intact prefix %d bytes, record sizes sum to %d", intact, off)
		}
		if err == nil && off != len(data) {
			t.Fatalf("clean replay consumed %d of %d bytes", off, len(data))
		}
		// Prefix consistency: replaying exactly the intact prefix must
		// yield the same records, cleanly.
		again, _, err2 := Replay(data[:off])
		if err2 != nil {
			t.Fatalf("intact prefix did not replay cleanly: %v", err2)
		}
		if len(again) != len(recs) {
			t.Fatalf("prefix replay: %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i].Kind != recs[i].Kind || again[i].Src != recs[i].Src ||
				again[i].Val.TS != recs[i].Val.TS || again[i].Ck != recs[i].Ck ||
				!bytes.Equal(again[i].Val.Payload, recs[i].Val.Payload) {
				t.Fatalf("prefix replay record %d differs", i)
			}
		}
		// Recover must never panic and must agree with a manual replay of
		// the decoded records.
		st := Recover(data, 3, 0)
		if st.Records != len(recs) {
			t.Fatalf("Recover saw %d records, Replay %d", st.Records, len(recs))
		}
		if st.Intact != intact {
			t.Fatalf("Recover intact %d, Replay %d", st.Intact, intact)
		}
		if st.Log.SelfLen() < st.Log.PrunedCount() {
			t.Fatalf("recovered log inconsistent: selfLen %d < pruned %d", st.Log.SelfLen(), st.Log.PrunedCount())
		}
	})
}
