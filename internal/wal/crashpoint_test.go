package wal

import (
	"encoding/binary"
	"errors"
	"testing"

	"mpsnap/internal/core"
)

// Crash-point harness: drive a live ValueLog and its WAL through a
// scripted sequence with sync-per-record, snapshotting the expected
// state after every record. Then recover from every byte prefix of the
// log and check the result matches the snapshot at however many records
// survived — i.e. every possible power-cut point recovers to a
// consistent pre-crash state.

type snap struct {
	selfLen  int
	pruned   int
	frontier core.Checkpoint
	view     core.View
}

func snapshot(l *core.ValueLog) snap {
	return snap{
		selfLen:  l.SelfLen(),
		pruned:   l.PrunedCount(),
		frontier: l.Frontier(),
		view:     l.AllView().Standalone(),
	}
}

// crashScript is one step: apply to the live log and append to the WAL.
// Each step appends at most one record.
type crashScript func(l *core.ValueLog, w *Writer)

func scriptAdd(src int, tag core.Tag, writer int) crashScript {
	return func(l *core.ValueLog, w *Writer) {
		v := val(tag, writer)
		if _, newSelf := l.Add(src, v); newSelf {
			w.AppendValue(src, v)
		}
	}
}

func scriptCheckpoint(tag core.Tag) crashScript {
	return func(l *core.ValueLog, w *Writer) {
		l.AdvanceFrontier(tag)
		w.AppendCheckpoint(l.Frontier())
	}
}

func scriptPrune() crashScript {
	return func(l *core.ValueLog, w *Writer) {
		ck := l.Frontier()
		for j := 0; j < l.N(); j++ {
			l.NoteVouch(j, ck) // self is skipped internally
		}
		w.AppendPrune(ck)
		l.PruneTo(ck)
	}
}

// recordBounds returns the byte offset after each whole record.
func recordBounds(data []byte) []int {
	var bounds []int
	off := 0
	for off+headerLen <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off:]))
		if len(data)-off-headerLen < n {
			break
		}
		off += headerLen + n
		bounds = append(bounds, off)
	}
	return bounds
}

func TestCrashPointEveryPrefix(t *testing.T) {
	const n, self = 3, 1
	tables := map[string][]crashScript{
		"appends-only": {
			scriptAdd(0, 2, 0), scriptAdd(1, 3, 1), scriptAdd(2, 5, 2),
			scriptAdd(1, 7, 1), scriptAdd(0, 8, 0),
		},
		"append-checkpoint": {
			scriptAdd(0, 2, 0), scriptAdd(1, 3, 1), scriptCheckpoint(3),
			scriptAdd(2, 5, 2), scriptCheckpoint(5), scriptAdd(1, 9, 1),
		},
		"append-checkpoint-prune": {
			scriptAdd(0, 2, 0), scriptAdd(1, 3, 1), scriptAdd(2, 4, 2),
			scriptCheckpoint(4), scriptPrune(),
			scriptAdd(0, 6, 0), scriptAdd(1, 8, 1),
			scriptCheckpoint(8), scriptPrune(),
			scriptAdd(2, 9, 2),
		},
		"prune-interleaved-duplicates": {
			scriptAdd(0, 2, 0), scriptAdd(2, 2, 0), // duplicate delivery
			scriptCheckpoint(2), scriptPrune(),
			scriptAdd(1, 4, 1), scriptAdd(1, 4, 1), // duplicate own value
			scriptCheckpoint(4), scriptAdd(0, 7, 0),
		},
	}
	for name, script := range tables {
		t.Run(name, func(t *testing.T) {
			live := core.NewValueLog(n, self)
			f := NewMemFile()
			w := NewWriter(f, 1) // sync every record: every record is a crash point
			snaps := []snap{snapshot(live)}
			for _, step := range script {
				step(live, w)
				if rc := len(recordBounds(f.Bytes())); rc > len(snaps)-1 {
					snaps = append(snaps, snapshot(live))
				}
			}
			if w.Err() != nil {
				t.Fatalf("writer error: %v", w.Err())
			}
			whole := f.Bytes()
			bounds := recordBounds(whole)
			if len(bounds) != len(snaps)-1 {
				t.Fatalf("%d records, %d snapshots", len(bounds), len(snaps)-1)
			}
			for cut := 0; cut <= len(whole); cut++ {
				st := Recover(whole[:cut], n, self)
				want := snaps[st.Records]
				if st.Log.SelfLen() != want.selfLen || st.Log.PrunedCount() != want.pruned {
					t.Fatalf("cut %d (%d records): sizes (%d,%d), want (%d,%d)",
						cut, st.Records, st.Log.SelfLen(), st.Log.PrunedCount(), want.selfLen, want.pruned)
				}
				if st.Frontier != want.frontier {
					t.Fatalf("cut %d: frontier %+v, want %+v", cut, st.Frontier, want.frontier)
				}
				if got := st.Log.AllView().Standalone(); !got.Equal(want.view) {
					t.Fatalf("cut %d: view %v, want %v", cut, got, want.view)
				}
				// A cut at a record boundary replays cleanly; mid-record
				// cuts surface as a torn tail, never anything worse.
				atBoundary := cut == 0
				for _, b := range bounds {
					if cut == b {
						atBoundary = true
					}
				}
				if atBoundary != (st.TailErr == nil) {
					t.Fatalf("cut %d: boundary=%v but tailErr=%v", cut, atBoundary, st.TailErr)
				}
				if st.TailErr != nil && !errors.Is(st.TailErr, ErrTornRecord) {
					t.Fatalf("cut %d: tail error %v, want torn record", cut, st.TailErr)
				}
			}
		})
	}
}

// TestCrashPointSyncHook kills the fsync at each successive sync point
// (power cut mid-batch) and checks the durable prefix recovers to the
// state as of the last successful sync.
func TestCrashPointSyncHook(t *testing.T) {
	const n, self = 3, 0
	for failAt := 1; failAt <= 6; failAt++ {
		f := NewMemFile()
		syncs := 0
		cut := errors.New("power cut")
		f.SyncHook = func() error {
			syncs++
			if syncs >= failAt {
				return cut
			}
			return nil
		}
		live := core.NewValueLog(n, self)
		w := NewWriter(f, 2)
		lastSynced := snapshot(live)
		prevSynced := 0
		note := func() {
			// The live log is mutated before each append, so when a sync
			// lands the current live state is exactly what became durable.
			if f.SyncedLen() > prevSynced {
				prevSynced = f.SyncedLen()
				lastSynced = snapshot(live)
			}
		}
		for i := 0; i < 8; i++ {
			v := val(core.Tag(2*i+2), i%n)
			if _, newSelf := live.Add(i%n, v); newSelf {
				w.AppendValue(i%n, v)
			}
			note()
			if i == 3 {
				live.AdvanceFrontier(8)
				w.AppendCheckpoint(live.Frontier())
				w.Sync()
				note()
			}
		}
		w.Sync()
		note()
		f.Crash()
		st := Recover(f.Durable(), n, self)
		if st.TailErr != nil {
			t.Fatalf("failAt %d: durable prefix torn: %v", failAt, st.TailErr)
		}
		if st.Log.SelfLen() != lastSynced.selfLen || st.Frontier != lastSynced.frontier {
			t.Fatalf("failAt %d: recovered (%d,%+v), want (%d,%+v)",
				failAt, st.Log.SelfLen(), st.Frontier, lastSynced.selfLen, lastSynced.frontier)
		}
	}
}
