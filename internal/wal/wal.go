// Package wal is the crash-recovery layer: a write-ahead log each node
// appends its protocol state changes to, durable before they are acted
// on, and replays after a crash to rebuild its core.ValueLog.
//
// Three record kinds cover the whole state machine:
//
//   - value: a value entered V[self] (own UPDATEs before they are
//     disseminated; received values as they are admitted);
//   - checkpoint: the node's frontier advanced after a good lattice
//     operation — synced before the node vouches for the checkpoint to
//     peers, so a vouch is never retracted by a crash;
//   - prune: the node garbage-collected its log below a globally-vouched
//     checkpoint — synced before the prune executes, so replay prunes at
//     the same point and recovered digests match live peers exactly.
//
// # Record layout
//
//	offset 0..3   payload length, uint32 big-endian (≤ MaxRecord)
//	offset 4..7   CRC-32C (Castagnoli) of the payload, uint32 big-endian
//	offset 8..    payload
//
// # Payload layout
//
//	offset 0      wal version byte (Version)
//	offset 1      record kind (RecValue, RecCheckpoint, RecPrune)
//	offset 2..    body, encoded with the internal/wire field codecs
//
// Replay is hostile-input safe: arbitrary bytes never panic, a torn or
// corrupt record stops replay cleanly at the last intact prefix (the
// fsync discipline guarantees everything the node acted on is in that
// prefix), and embedded lengths are validated against the bytes in hand.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mpsnap/internal/core"
	"mpsnap/internal/wire"
)

// Version is the WAL payload version byte.
const Version byte = 1

// Record kinds.
const (
	RecValue      byte = 1 // varint src, value
	RecCheckpoint byte = 2 // checkpoint
	RecPrune      byte = 3 // checkpoint
)

// headerLen is the per-record framing overhead: length + CRC.
const headerLen = 8

// MaxRecord caps a single record's payload, bounding the allocation a
// corrupt length prefix can cause.
const MaxRecord = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Replay tail errors (wrapped with position detail).
var (
	// ErrTornRecord reports a record cut short — the normal shape of a
	// crash mid-write.
	ErrTornRecord = errors.New("wal: torn record")
	// ErrBadCRC reports a payload whose checksum does not match.
	ErrBadCRC = errors.New("wal: record checksum mismatch")
	// ErrBadRecord reports a payload that frames correctly but does not
	// decode (unknown version or kind, malformed body).
	ErrBadRecord = errors.New("wal: malformed record")
)

// File is the durability surface the writer needs; *os.File satisfies it,
// and MemFile provides a power-cut-simulating in-memory implementation.
type File interface {
	io.Writer
	Sync() error
}

// Writer appends records to a WAL file with batched fsync: appends
// accumulate and the file is synced every batch records, or explicitly
// via Sync at the protocol's durability points (before disseminating an
// own value, before vouching a checkpoint, before pruning). Errors latch:
// after the first write failure every call reports it and nothing more is
// written.
type Writer struct {
	f       File
	batch   int
	pending int
	buf     wire.Buffer
	frame   []byte
	err     error
}

// NewWriter returns a writer over f syncing every batch appends (batch
// ≤ 0 means sync on every append).
func NewWriter(f File, batch int) *Writer {
	return &Writer{f: f, batch: batch}
}

// Err returns the first write or sync failure, or nil.
func (w *Writer) Err() error { return w.err }

func (w *Writer) append(kind byte, body func(*wire.Buffer)) error {
	if w.err != nil {
		return w.err
	}
	w.buf.Reset()
	w.buf.PutByte(Version)
	w.buf.PutByte(kind)
	body(&w.buf)
	payload := w.buf.Bytes()
	if len(payload) > MaxRecord {
		w.err = fmt.Errorf("wal: record payload %d exceeds cap %d", len(payload), MaxRecord)
		return w.err
	}
	w.frame = w.frame[:0]
	w.frame = binary.BigEndian.AppendUint32(w.frame, uint32(len(payload)))
	w.frame = binary.BigEndian.AppendUint32(w.frame, crc32.Checksum(payload, crcTable))
	w.frame = append(w.frame, payload...)
	if _, err := w.f.Write(w.frame); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.pending++
	if w.pending >= w.batch {
		return w.Sync()
	}
	return nil
}

// Sync flushes pending appends to stable storage.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: sync: %w", err)
		return w.err
	}
	w.pending = 0
	return nil
}

// AppendValue records that value v (received from src) entered V[self].
func (w *Writer) AppendValue(src int, v core.Value) error {
	return w.append(RecValue, func(b *wire.Buffer) {
		b.PutInt(src)
		wire.PutValue(b, v)
	})
}

// AppendCheckpoint records a frontier advance. Callers Sync before
// vouching the checkpoint to peers.
func (w *Writer) AppendCheckpoint(ck core.Checkpoint) error {
	return w.append(RecCheckpoint, func(b *wire.Buffer) { wire.PutCheckpoint(b, ck) })
}

// AppendPrune records a garbage collection below ck. Callers Sync before
// executing the prune.
func (w *Writer) AppendPrune(ck core.Checkpoint) error {
	return w.append(RecPrune, func(b *wire.Buffer) { wire.PutCheckpoint(b, ck) })
}

// Record is one decoded WAL record.
type Record struct {
	Kind byte
	Src  int             // RecValue
	Val  core.Value      // RecValue
	Ck   core.Checkpoint // RecCheckpoint, RecPrune
}

// Replay decodes every intact record from the front of data, stopping
// cleanly at the first torn or corrupt one. It returns the decoded
// records, the byte length of the intact prefix (the offset replay
// stopped at — the point a caller must truncate to before appending new
// records after garbage bytes), and an error describing why replay
// stopped (nil when data ends exactly at a record boundary). The records
// before the stop are always valid. Replay never panics on arbitrary
// input.
func Replay(data []byte) ([]Record, int, error) {
	var recs []Record
	off := 0
	for off < len(data) {
		if len(data)-off < headerLen {
			return recs, off, fmt.Errorf("%w: %d trailing header bytes at offset %d", ErrTornRecord, len(data)-off, off)
		}
		n := binary.BigEndian.Uint32(data[off:])
		if n > MaxRecord {
			return recs, off, fmt.Errorf("%w: length %d exceeds cap at offset %d", ErrBadRecord, n, off)
		}
		want := binary.BigEndian.Uint32(data[off+4:])
		if uint32(len(data)-off-headerLen) < n {
			return recs, off, fmt.Errorf("%w: %d payload bytes of %d at offset %d", ErrTornRecord, len(data)-off-headerLen, n, off)
		}
		payload := data[off+headerLen : off+headerLen+int(n)]
		if got := crc32.Checksum(payload, crcTable); got != want {
			return recs, off, fmt.Errorf("%w: %08x != %08x at offset %d", ErrBadCRC, got, want, off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, off, fmt.Errorf("%w at offset %d: %w", ErrBadRecord, off, err)
		}
		recs = append(recs, rec)
		off += headerLen + int(n)
	}
	return recs, off, nil
}

func decodeRecord(payload []byte) (Record, error) {
	d := wire.NewDecoder(payload)
	if v := d.Byte(); v != Version {
		return Record{}, fmt.Errorf("unknown wal version %d", v)
	}
	rec := Record{Kind: d.Byte()}
	switch rec.Kind {
	case RecValue:
		rec.Src = d.Int()
		rec.Val = wire.GetValue(d)
	case RecCheckpoint, RecPrune:
		rec.Ck = wire.GetCheckpoint(d)
	default:
		return Record{}, fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	if err := d.Err(); err != nil {
		return Record{}, err
	}
	if d.Remaining() != 0 {
		return Record{}, fmt.Errorf("%d trailing bytes after record body", d.Remaining())
	}
	return rec, nil
}
