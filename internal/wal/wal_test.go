package wal

import (
	"errors"
	"fmt"
	"testing"

	"mpsnap/internal/core"
)

func val(tag core.Tag, w int) core.Value {
	return core.Value{TS: core.Timestamp{Tag: tag, Writer: w}, Payload: []byte(fmt.Sprintf("p%d-%d", tag, w))}
}

func TestWriterReplayRoundtrip(t *testing.T) {
	f := NewMemFile()
	w := NewWriter(f, 1)
	recs := []Record{
		{Kind: RecValue, Src: 1, Val: val(3, 1)},
		{Kind: RecValue, Src: 0, Val: val(5, 0)},
		{Kind: RecCheckpoint, Ck: core.Checkpoint{Tag: 5, Count: 2, Digest: 0xfeed}},
		{Kind: RecValue, Src: 2, Val: val(9, 2)},
		{Kind: RecPrune, Ck: core.Checkpoint{Tag: 5, Count: 2, Digest: 0xfeed}},
	}
	for _, r := range recs {
		var err error
		switch r.Kind {
		case RecValue:
			err = w.AppendValue(r.Src, r.Val)
		case RecCheckpoint:
			err = w.AppendCheckpoint(r.Ck)
		case RecPrune:
			err = w.AppendPrune(r.Ck)
		}
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got, intact, err := Replay(f.Bytes())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if intact != f.Len() {
		t.Fatalf("intact prefix %d bytes, want the whole file (%d)", intact, f.Len())
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || got[i].Src != recs[i].Src ||
			got[i].Val.TS != recs[i].Val.TS || got[i].Ck != recs[i].Ck {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestWriterBatchingDurability(t *testing.T) {
	f := NewMemFile()
	w := NewWriter(f, 3)
	for i := 0; i < 4; i++ {
		if err := w.AppendValue(0, val(core.Tag(i+1), 0)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Records 1..3 auto-synced at the batch boundary; record 4 is volatile.
	recs, _, err := Replay(f.Durable())
	if err != nil {
		t.Fatalf("replay durable: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("durable records = %d, want 3", len(recs))
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if recs, _, _ = Replay(f.Durable()); len(recs) != 4 {
		t.Fatalf("after explicit sync durable records = %d, want 4", len(recs))
	}
}

func TestReplayTornTail(t *testing.T) {
	f := NewMemFile()
	w := NewWriter(f, 1)
	for i := 0; i < 3; i++ {
		w.AppendValue(0, val(core.Tag(i+1), 0))
	}
	whole := append([]byte(nil), f.Bytes()...)
	for cut := len(whole) - 1; cut >= 0; cut-- {
		recs, intact, err := Replay(whole[:cut])
		// Count how many full records fit in the cut prefix.
		full := 0
		off := 0
		for off < cut {
			if cut-off < headerLen {
				break
			}
			n := int(uint32(whole[off])<<24 | uint32(whole[off+1])<<16 | uint32(whole[off+2])<<8 | uint32(whole[off+3]))
			if cut-off-headerLen < n {
				break
			}
			full++
			off += headerLen + n
		}
		boundary := off == cut
		if len(recs) != full {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), full)
		}
		if intact != off {
			t.Fatalf("cut %d: intact prefix %d bytes, want %d", cut, intact, off)
		}
		if boundary && err != nil {
			t.Fatalf("cut %d at boundary: unexpected error %v", cut, err)
		}
		if !boundary && !errors.Is(err, ErrTornRecord) {
			t.Fatalf("cut %d mid-record: err = %v, want torn record", cut, err)
		}
	}
}

func TestReplayBitFlips(t *testing.T) {
	f := NewMemFile()
	w := NewWriter(f, 1)
	for i := 0; i < 3; i++ {
		w.AppendValue(1, val(core.Tag(10+i), 1))
	}
	whole := f.Bytes()
	// Locate record boundaries.
	var bounds []int
	off := 0
	for off < len(whole) {
		bounds = append(bounds, off)
		n := int(uint32(whole[off])<<24 | uint32(whole[off+1])<<16 | uint32(whole[off+2])<<8 | uint32(whole[off+3]))
		off += headerLen + n
	}
	for pos := 0; pos < len(whole); pos++ {
		mut := append([]byte(nil), whole...)
		mut[pos] ^= 0x40
		recs, _, err := Replay(mut)
		// The flip lands in some record k; records before k must survive.
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= pos {
			k++
		}
		if len(recs) < k {
			t.Fatalf("flip at %d: only %d records before corrupt record %d", pos, len(recs), k)
		}
		// A flip can accidentally produce a longer valid-looking frame that
		// swallows later records, but it must never yield MORE records than
		// the file held, and never a nil error with fewer records.
		if len(recs) > 3 {
			t.Fatalf("flip at %d: %d records from a 3-record file", pos, len(recs))
		}
		if err == nil && len(recs) != 3 {
			t.Fatalf("flip at %d: clean replay but %d records", pos, len(recs))
		}
	}
}

func TestRecoverRebuildsLog(t *testing.T) {
	const n, self = 3, 0
	live := core.NewValueLog(n, self)
	f := NewMemFile()
	w := NewWriter(f, 1)
	add := func(src int, v core.Value) {
		if _, newSelf := live.Add(src, v); newSelf {
			w.AppendValue(src, v)
		}
	}
	add(0, val(2, 0))
	add(1, val(4, 1))
	add(2, val(6, 2))
	live.AdvanceFrontier(6)
	ck := live.Frontier()
	w.AppendCheckpoint(ck)
	for j := 1; j < n; j++ {
		live.NoteVouch(j, ck)
	}
	w.AppendPrune(ck)
	if !live.PruneTo(ck) {
		t.Fatal("live prune refused")
	}
	add(1, val(9, 1))
	add(0, val(11, 0))
	w.Sync()

	st := Recover(f.Durable(), n, self)
	if st.TailErr != nil {
		t.Fatalf("tail error on clean wal: %v", st.TailErr)
	}
	if st.OwnTag != 11 {
		t.Fatalf("OwnTag = %d, want 11", st.OwnTag)
	}
	if st.MaxTag != 11 {
		t.Fatalf("MaxTag = %d, want 11", st.MaxTag)
	}
	if st.Frontier != live.Frontier() {
		t.Fatalf("frontier %+v, want %+v", st.Frontier, live.Frontier())
	}
	if st.Log.SelfLen() != live.SelfLen() || st.Log.PrunedCount() != live.PrunedCount() {
		t.Fatalf("recovered sizes (%d,%d) != live (%d,%d)",
			st.Log.SelfLen(), st.Log.PrunedCount(), live.SelfLen(), live.PrunedCount())
	}
	if !st.Log.AllView().Equal(live.AllView()) {
		t.Fatalf("recovered view %v != live %v", st.Log.AllView(), live.AllView())
	}
	// Digest agreement is what lets the recovered node vouch for peers'
	// checkpoints: both must vouch each other's frontier.
	if !st.Log.Vouches(live.Frontier()) || !live.Vouches(st.Log.Frontier()) {
		t.Fatal("recovered and live logs do not cross-vouch")
	}
}

// TestRecoverTruncateAppendRecover is the second-crash scenario: a torn
// tail is truncated to State.Intact before new records are appended, so
// a second replay reaches both the pre-crash prefix and everything
// written after the first recovery. (Appending behind the garbage
// instead would make every post-recovery record unreachable.)
func TestRecoverTruncateAppendRecover(t *testing.T) {
	f := NewMemFile()
	w := NewWriter(f, 1)
	w.AppendValue(0, val(1, 0))
	w.AppendValue(1, val(2, 1))
	// Crash mid-append: the file keeps a torn half-record tail.
	torn := append(f.Bytes()[:f.Len():f.Len()], 0, 0, 0, 42, 0xde, 0xad)

	st := Recover(torn, 3, 0)
	if st.Records != 2 || st.TailErr == nil {
		t.Fatalf("first recovery: records=%d err=%v", st.Records, st.TailErr)
	}
	if st.Intact >= len(torn) {
		t.Fatalf("Intact = %d, want < %d (the torn tail)", st.Intact, len(torn))
	}

	// Reopen for append the way cmd/asonode does: truncate to the intact
	// prefix first, then attach a writer.
	f2 := NewMemFile()
	f2.Write(torn[:st.Intact])
	f2.Sync()
	w2 := NewWriter(f2, 1)
	w2.AppendValue(0, val(5, 0))

	again := Recover(f2.Durable(), 3, 0)
	if again.TailErr != nil {
		t.Fatalf("second recovery tail: %v", again.TailErr)
	}
	if again.Records != 3 || again.OwnTag != 5 {
		t.Fatalf("second recovery: records=%d ownTag=%d, want 3 records through tag 5",
			again.Records, again.OwnTag)
	}
}

func TestRecoverEmptyAndGarbage(t *testing.T) {
	if st := Recover(nil, 3, 0); st.Records != 0 || st.TailErr != nil {
		t.Fatalf("empty wal: %+v", st)
	}
	st := Recover([]byte("not a wal at all, just bytes"), 3, 0)
	if st.Records != 0 || st.TailErr == nil {
		t.Fatalf("garbage wal: records=%d err=%v", st.Records, st.TailErr)
	}
}
