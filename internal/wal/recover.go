package wal

import "mpsnap/internal/core"

// State is a node's protocol state rebuilt from its WAL: the value log
// with frontier and prune point restored, plus the tag watermarks the
// node needs to never reuse a timestamp.
type State struct {
	Log *core.ValueLog
	// Frontier is the recovered checkpoint (the log's frontier after
	// replay) — the base the node rejoins from via checkpoint-delta
	// borrow.
	Frontier core.Checkpoint
	// OwnTag is the largest tag this node itself wrote before the crash.
	OwnTag core.Tag
	// MaxTag is the largest tag seen in any replayed record; seeding the
	// recovered node's tag state with it guarantees fresh operations pick
	// strictly larger tags.
	MaxTag core.Tag
	// Records is how many intact records were replayed.
	Records int
	// Intact is the byte length of the replayed intact prefix. When
	// TailErr is non-nil the file holds garbage past this offset; a
	// caller reopening the file for append must truncate to Intact first,
	// or every record it writes lands after the garbage and is lost to
	// the next replay.
	Intact int
	// TailErr describes why replay stopped, nil for a clean end. A torn
	// tail is the normal shape of a crash; everything the node acted on
	// before crashing is in the intact prefix (sync-before-act).
	TailErr error
}

// Recover replays a WAL image into a fresh ValueLog for node self of n.
// It never fails: corrupt input yields the state of the longest intact
// prefix, with TailErr saying where and why replay stopped.
func Recover(data []byte, n, self int) *State {
	st := &State{Log: core.NewValueLog(n, self)}
	recs, intact, err := Replay(data)
	st.TailErr = err
	st.Intact = intact
	st.Records = len(recs)
	note := func(t core.Tag) {
		if t > st.MaxTag && t != core.MaxTag {
			st.MaxTag = t
		}
	}
	for _, rec := range recs {
		switch rec.Kind {
		case RecValue:
			src := rec.Src
			if src < 0 || src >= n {
				src = self // foreign src id: keep the value, skip cursor credit
			}
			st.Log.Add(src, rec.Val)
			note(rec.Val.TS.Tag)
			if rec.Val.TS.Writer == self && rec.Val.TS.Tag > st.OwnTag {
				st.OwnTag = rec.Val.TS.Tag
			}
		case RecCheckpoint:
			st.Log.AdvanceFrontier(rec.Ck.Tag)
			note(rec.Ck.Tag)
		case RecPrune:
			// The prune record attests every node had vouched rec.Ck at
			// runtime; replaying the vouches first re-establishes the
			// cursor precondition PruneTo checks.
			for j := 0; j < n; j++ {
				if j != self {
					st.Log.NoteVouch(j, rec.Ck)
				}
			}
			st.Log.PruneTo(rec.Ck)
			note(rec.Ck.Tag)
		}
	}
	st.Frontier = st.Log.Frontier()
	return st
}
