package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// Hello is the per-connection handshake: the first frame on every
// connection carries the dialer's node ID, which is what attributes all
// subsequent frames on that connection to a source (frames themselves
// carry no source field).
type Hello struct{ ID int }

// Kind implements rt.Message.
func (Hello) Kind() string { return "transportHello" }

// Wire tag 2 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 2, Proto: Hello{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutInt(m.(Hello).ID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return Hello{ID: d.Int()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return Hello{ID: rng.Intn(64)} },
	})
}

// TCPConfig parameterizes one TCP node.
type TCPConfig struct {
	// ID is this node's index into Addrs.
	ID int
	// Addrs lists every node's listen address ("host:port"), index =
	// node ID. len(Addrs) = n.
	Addrs []string
	// F is the resilience bound.
	F int
	// D is the real-time duration reported as one rt.TicksPerD when
	// converting wall-clock time to ticks (default 10ms). It does not
	// delay messages — real network latency applies.
	D time.Duration
	// DialTimeout bounds the total time spent connecting to each peer
	// (default 10s).
	DialTimeout time.Duration
	// MaxFrame caps the wire frame size on both encode and decode
	// (default wire.DefaultMaxFrame). A corrupt length prefix can never
	// allocate more than this.
	MaxFrame int
	// OnError, if set, is invoked (from a transport goroutine) whenever a
	// peer connection is dropped because its byte stream failed to decode
	// — a framing error, an unknown tag, a malformed body. The peer index
	// is -1 if the connection failed before identifying itself. Only that
	// connection is affected; the rest of the mesh keeps running. When
	// nil, errors are recorded and retrievable via Errors.
	OnError func(peer int, err error)
	// Listener, if set, is used instead of listening on Addrs[ID]
	// (lets tests bind :0 first and distribute the real addresses).
	Listener net.Listener
	// Epoch, if set, is the time-zero Now() measures ticks from instead
	// of the node's construction instant. Deployments whose protocol
	// compares timestamps across nodes (e.g. cluster cut frontiers) must
	// share one epoch, or per-node construction skew shows up as clock
	// skew; for nodes in one process, pass the same time.Time to all.
	Epoch time.Time
	// Legacy selects the pre-optimization hot path (serial inline
	// dispatch, per-frame socket writes, no flush coalescing). Kept so
	// wall-clock bake-offs can measure the optimized path against the
	// original one inside the same binary.
	Legacy bool
	// FlushDelay is the outbound coalescing window: after encoding a
	// frame with no successor already queued, the send loop waits up to
	// this long for more frames before handing the batch to the socket,
	// so coalescing no longer depends on the len(queue)>0 race alone.
	// 0 means the 5µs default; negative disables the timer (every
	// drained batch is written immediately). Ignored under Legacy.
	FlushDelay time.Duration
	// Observer, if set, receives a rt.MsgEvent for every outbound send,
	// inbound delivery, and corrupt inbound stream. It is called from
	// client and receive goroutines concurrently, so it must be
	// concurrency-safe and non-blocking (internal/obs implementations
	// are).
	Observer rt.Observer
}

// TCPNode is a node of a TCP-connected deployment. TCP's in-order
// delivery provides the FIFO channel property; reliability holds as long
// as connections stay up. When a peer's connection dies, the send loop
// redials with backoff and resumes on the fresh connection: frames the
// send loop had batched but not yet written to a socket are resent in
// order, so a transient reset between two live processes does not open a
// FIFO gap; frames already written to the dead socket are the in-flight
// loss of the crash model — the crashed-receiver semantics crash-recovery
// deployments (`asonode -wal`) repair on rejoin — but the mesh heals, so
// a restarted process receives the replies it is owed. The transport
// never re-delivers frames it knows a socket accepted.
type TCPNode struct {
	node
	cfg TCPConfig

	listener net.Listener
	start    time.Time

	outs []chan rt.Message // per-peer outbound queues

	// stale[peer] is set when peer's inbound stream ends: the process
	// behind it is gone, so our outbound connection is doomed even though
	// the kernel may still accept a write or two. The send loop checks it
	// before each frame and redials first, instead of losing the frame to
	// a dead socket.
	stale []atomic.Bool

	// disp[src] is the per-source FIFO dispatcher decoupling socket
	// reads from handler execution (nil until the first inbound frame
	// from src; see dispatchLoop). Guarded by dispMu.
	dispMu sync.Mutex
	disp   []*dispatcher

	connsMu sync.Mutex
	conns   []net.Conn

	acceptedMu sync.Mutex
	accepted   []net.Conn

	errMu sync.Mutex
	errs  []error

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewTCPNode starts listening, connects to all peers, and returns once
// the full mesh is up. Peers must be started within DialTimeout of each
// other.
func NewTCPNode(cfg TCPConfig) (*TCPNode, error) {
	if cfg.D == 0 {
		cfg.D = 10 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	n := len(cfg.Addrs)
	if cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("transport: id %d out of range", cfg.ID)
	}
	start := cfg.Epoch
	if start.IsZero() {
		start = time.Now()
	}
	t := &TCPNode{
		cfg:    cfg,
		start:  start,
		outs:   make([]chan rt.Message, n),
		stale:  make([]atomic.Bool, n),
		disp:   make([]*dispatcher, n),
		conns:  make([]net.Conn, n),
		closed: make(chan struct{}),
	}
	t.init()
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.ID], err)
		}
	}
	t.listener = ln

	// Accept inbound connections: each peer dials us once and sends a
	// hello frame; we then read frames from it until the stream ends or
	// fails to decode.
	t.wg.Add(1)
	go t.acceptLoop()

	// Dial every peer (including ourselves, for uniform self-delivery
	// through the loopback).
	deadline := time.Now().Add(cfg.DialTimeout)
	for peer := 0; peer < n; peer++ {
		conn, err := dialUntil(cfg.Addrs[peer], deadline)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: node %d unreachable at %s (retried with backoff for %v): %w",
				peer, cfg.Addrs[peer], cfg.DialTimeout, err)
		}
		frame, err := wire.MarshalFrame(Hello{ID: cfg.ID}, cfg.MaxFrame)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: encode handshake: %w", err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: handshake with node %d: %w", peer, err)
		}
		t.conns[peer] = conn
		out := make(chan rt.Message, 1<<14)
		t.outs[peer] = out
		t.wg.Add(1)
		if cfg.Legacy {
			go t.sendLoopLegacy(peer, conn, out)
		} else {
			go t.sendLoop(peer, conn, out)
		}
	}
	return t, nil
}

// dialUntil dials addr with bounded exponential backoff (50ms doubling to
// a 2s cap) until the deadline passes. Peers of a cluster may come up in
// any order, so early connection refusals are expected, not fatal; only a
// peer still unreachable once the whole budget is spent is an error.
func dialUntil(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		sleep := backoff
		if rem := time.Until(deadline); rem < sleep {
			sleep = rem
		}
		time.Sleep(sleep)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func (t *TCPNode) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.acceptedMu.Lock()
		t.accepted = append(t.accepted, conn)
		t.acceptedMu.Unlock()
		t.wg.Add(1)
		go t.recvLoop(conn)
	}
}

// recvBufSize is the inbound read buffer of the optimized path: large
// enough that a coalesced burst of frames costs one read syscall.
const recvBufSize = 64 << 10

// recvLoop reads frames from one inbound connection until the stream
// ends. A clean close (or a network-level failure) ends the loop
// silently, matching crash-stop semantics; a stream that stops making
// sense as frames — bad version, oversized length, truncated payload,
// unknown tag, malformed body — closes only this connection and surfaces
// a descriptive error through the error hook.
//
// On the optimized path the loop only frames and decodes: decoded
// messages are handed to the source's FIFO dispatcher, so the next frame
// is read off the socket while the handler still runs (pipelining). The
// Legacy path runs the handler inline, one frame at a time.
func (t *TCPNode) recvLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	size := recvBufSize
	if t.cfg.Legacy {
		size = 4096 // bufio.NewReader's default, the pre-optimization size
	}
	r := bufio.NewReaderSize(conn, size)
	var buf []byte

	// Handshake: the first frame must be a Hello naming the peer.
	payload, err := wire.ReadFrame(r, buf, t.cfg.MaxFrame)
	if err != nil {
		t.recvError(-1, conn, err, false)
		return
	}
	buf = payload
	hm, err := wire.Unmarshal(payload)
	if err != nil {
		t.observeMsg(rt.MsgCorrupt, -1, t.cfg.ID, "", len(payload))
		t.recvError(-1, conn, err, true)
		return
	}
	h, ok := hm.(Hello)
	if !ok || h.ID < 0 || h.ID >= len(t.cfg.Addrs) {
		t.recvError(-1, conn, fmt.Errorf("transport: bad handshake %q from %s", hm.Kind(), conn.RemoteAddr()), true)
		return
	}
	src := h.ID
	var disp *dispatcher
	if !t.cfg.Legacy {
		disp = t.dispatcherFor(src)
	}

	for {
		payload, err := wire.ReadFrame(r, buf, t.cfg.MaxFrame)
		if err != nil {
			// The stream ended: the process behind it is gone (crash or
			// restart), so our outbound connection to src is doomed too —
			// flag it so the send loop redials before trusting it with
			// another frame.
			t.stale[src].Store(true)
			t.recvError(src, conn, err, false)
			return
		}
		buf = payload
		msg, err := wire.Unmarshal(payload)
		if err != nil {
			t.observeMsg(rt.MsgCorrupt, src, t.cfg.ID, "", len(payload))
			t.recvError(src, conn, err, true)
			return
		}
		// Decoders copy all byte fields, so reusing buf for the next
		// frame cannot mutate a delivered message.
		t.observeMsg(rt.MsgDeliver, src, t.cfg.ID, msg.Kind(), len(payload))
		if disp == nil {
			t.deliver(src, msg)
			continue
		}
		select {
		case disp.ch <- msg:
		case <-t.closed:
			return
		}
	}
}

// dispQueue bounds each source's dispatch queue. A full queue blocks the
// source's recvLoop, which stops reading its socket: backpressure reaches
// the sender through TCP flow control, never by dropping or reordering.
const dispQueue = 4096

// dispBatch caps how many queued messages one dispatch cycle hands to
// the handler inside a single critical section.
const dispBatch = 256

// dispatcher is one source's inbound FIFO: every connection claiming the
// same source ID feeds the same queue, so per-peer delivery order is
// preserved even across a peer's reconnect.
type dispatcher struct {
	ch chan rt.Message
}

// dispatcherFor returns src's dispatcher, starting its worker on first
// use.
func (t *TCPNode) dispatcherFor(src int) *dispatcher {
	t.dispMu.Lock()
	defer t.dispMu.Unlock()
	if t.disp[src] == nil {
		d := &dispatcher{ch: make(chan rt.Message, dispQueue)}
		t.disp[src] = d
		t.wg.Add(1)
		go t.dispatchLoop(src, d)
	}
	return t.disp[src]
}

// dispatchLoop is the per-source delivery worker: it drains whatever has
// accumulated on the queue (up to dispBatch) and runs the handler over
// the whole batch in one critical section with a single waiter wakeup,
// amortizing the node mutex and the condition broadcast over the batch
// instead of paying both per message.
func (t *TCPNode) dispatchLoop(src int, d *dispatcher) {
	defer t.wg.Done()
	batch := make([]rt.Message, 0, dispBatch)
	for {
		select {
		case <-t.closed:
			return
		case msg := <-d.ch:
			batch = append(batch[:0], msg)
		drain:
			for len(batch) < dispBatch {
				select {
				case m := <-d.ch:
					batch = append(batch, m)
				default:
					break drain
				}
			}
			t.deliverBatch(src, batch)
		}
	}
}

// recvError records or reports why a connection is being dropped. decode
// marks errors past the framing layer, which are always wire errors;
// framing-layer errors are surfaced only when the bytes were wrong
// (version, length, truncation), not when the network ended the stream
// (EOF, reset, local shutdown) — a dead peer is the crash model at work,
// not a protocol violation.
func (t *TCPNode) recvError(peer int, conn net.Conn, err error, decode bool) {
	if !decode {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return
		}
		if !errors.Is(err, wire.ErrBadVersion) && !errors.Is(err, wire.ErrFrameTooLarge) && !errors.Is(err, wire.ErrShortFrame) {
			return // network-level failure, not a wire error
		}
		if errors.Is(err, wire.ErrShortFrame) {
			// A frame cut short by a vanished peer is a network event;
			// only a stream that keeps flowing with wrong bytes is not.
			var ne net.Error
			if errors.As(err, &ne) || errors.Is(err, io.ErrUnexpectedEOF) {
				return
			}
		}
	}
	t.reportError(peer, fmt.Errorf("transport: connection from peer %d (%s) dropped: %w", peer, conn.RemoteAddr(), err))
}

// reportError surfaces err through the hook, or records it when no hook
// is installed. Errors racing with shutdown are discarded.
func (t *TCPNode) reportError(peer int, err error) {
	select {
	case <-t.closed:
		return // shutdown races are not peer errors
	default:
	}
	if t.cfg.OnError != nil {
		t.cfg.OnError(peer, err)
		return
	}
	t.errMu.Lock()
	t.errs = append(t.errs, err)
	t.errMu.Unlock()
}

// Errors returns the decode errors recorded so far (when no OnError hook
// is installed).
func (t *TCPNode) Errors() []error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return append([]error(nil), t.errs...)
}

// maxSendBatch caps the pending (encoded, unwritten) buffer of one send
// loop: once it is reached the batch is flushed even though more frames
// are queued, so a slow socket or a deep queue cannot grow the buffer —
// and the unit a redial must resend — without bound. A single oversized
// frame can still exceed the cap by itself (frames are never split), so
// the hard bound is maxSendBatch plus one frame.
const maxSendBatch = 64 << 10

// defaultFlushDelay is the outbound coalescing window applied when
// TCPConfig.FlushDelay is zero: long enough to catch the reply frames a
// burst of handler executions produces, short enough not to tax the
// request-reply rounds of a lightly loaded protocol (measured: 5µs beats
// both no timer and 20µs across 32..1024 loadgen clients on loopback).
const defaultFlushDelay = 5 * time.Microsecond

// flushDelay resolves the configured coalescing window (0 = disabled).
func (t *TCPNode) flushDelay() time.Duration {
	if t.cfg.Legacy || t.cfg.FlushDelay < 0 {
		return 0
	}
	if t.cfg.FlushDelay == 0 {
		return defaultFlushDelay
	}
	return t.cfg.FlushDelay
}

// sendLoop encodes and writes frames for one peer. Frames are encoded
// directly into a pending batch buffer and written to the socket once the
// queue is drained AND the flush window (flushDelay) has passed without a
// successor arriving — or immediately once the batch reaches maxSendBatch
// — so bursts coalesce into one write syscall without racing on queue
// length. A write failure (or a stale flag raised by the receive side)
// means the connection died; the loop redials with backoff and resends
// the WHOLE unwritten batch on the fresh connection — the buffer is
// cleared only after a successful write, so a transient connection reset
// between two live processes cannot silently drop frames that were
// batched but never handed to a socket, which would open a FIFO gap the
// protocol's reliable-channel assumption does not tolerate. Frames
// already written before the failure are the in-flight loss of the crash
// model, repaired by the rejoin path when the peer recovers with a WAL;
// without the redial a restarted process would never again receive this
// node's messages and its first operation would starve awaiting a quorum.
func (t *TCPNode) sendLoop(peer int, conn net.Conn, out <-chan rt.Message) {
	defer t.wg.Done()
	var body wire.Buffer
	// pending holds encoded frames not yet accepted by a socket write.
	var pending []byte
	flush := t.flushDelay()
	var timer *time.Timer
	if flush > 0 {
		timer = time.NewTimer(flush)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	// encode appends msg as one frame to pending. Encode failures are
	// local programming errors (unregistered type, oversized frame); they
	// are surfaced but must not tear down the connection.
	encode := func(msg rt.Message) {
		body.Reset()
		if err := wire.AppendMessage(&body, msg); err != nil {
			t.reportError(peer, fmt.Errorf("transport: encode to node %d: %w", peer, err))
			return
		}
		p, err := wire.AppendFrame(pending, body.Bytes(), t.cfg.MaxFrame)
		if err != nil {
			t.reportError(peer, fmt.Errorf("transport: encode to node %d: %w", peer, err))
			return
		}
		pending = p
	}
	for {
		select {
		case <-t.closed:
			return
		case msg := <-out:
			encode(msg)
			// Gather: coalesce everything already queued, plus — when a
			// flush window is configured — frames arriving within it. The
			// window is armed once per batch (it bounds the write's total
			// delay, not the gap between frames), and the batch is flushed
			// at maxSendBatch even though more frames are queued.
			armed := false
		gather:
			for len(pending) < maxSendBatch {
				select {
				case m := <-out:
					encode(m)
					continue
				default:
				}
				if timer == nil {
					break gather
				}
				if !armed {
					timer.Reset(flush)
					armed = true
				}
				select {
				case m := <-out:
					encode(m)
				case <-timer.C:
					armed = false
					break gather
				case <-t.closed:
					return
				}
			}
			if armed && !timer.Stop() {
				<-timer.C
			}
			if len(pending) == 0 {
				continue // every gathered frame failed to encode
			}
			if t.stale[peer].CompareAndSwap(true, false) {
				// The peer's inbound stream ended since the last frame: the
				// kernel would accept this write and drop it on the floor.
				if conn = t.redial(peer, conn); conn == nil {
					return // node shut down while reconnecting
				}
			}
			for {
				_, werr := conn.Write(pending)
				if werr == nil {
					pending = pending[:0]
					break
				}
				if conn = t.redial(peer, conn); conn == nil {
					return // node shut down while reconnecting
				}
			}
		}
	}
}

// sendLoopLegacy is the pre-optimization send loop, byte-for-byte the
// behaviour the optimized sendLoop is benchmarked against: per-frame
// encode into an intermediate buffer, batching only when the queue
// happens to be non-empty at check time, one write per check. The redial
// resend-all-unwritten invariant is identical.
func (t *TCPNode) sendLoopLegacy(peer int, conn net.Conn, out <-chan rt.Message) {
	defer t.wg.Done()
	var body wire.Buffer
	var frame []byte
	var pending []byte
	for {
		select {
		case <-t.closed:
			return
		case msg := <-out:
			body.Reset()
			if err := wire.AppendMessage(&body, msg); err != nil {
				t.reportError(peer, fmt.Errorf("transport: encode to node %d: %w", peer, err))
				continue
			}
			var err error
			frame, err = wire.AppendFrame(frame[:0], body.Bytes(), t.cfg.MaxFrame)
			if err != nil {
				t.reportError(peer, fmt.Errorf("transport: encode to node %d: %w", peer, err))
				continue
			}
			pending = append(pending, frame...)
			if t.stale[peer].CompareAndSwap(true, false) {
				if conn = t.redial(peer, conn); conn == nil {
					return // node shut down while reconnecting
				}
			}
			if len(out) > 0 && len(pending) < maxSendBatch {
				continue // batch: more frames are already queued
			}
			for {
				_, werr := conn.Write(pending)
				if werr == nil {
					pending = pending[:0]
					break
				}
				if conn = t.redial(peer, conn); conn == nil {
					return // node shut down while reconnecting
				}
			}
		}
	}
}

// redial replaces a dead peer connection: it closes the old one, dials
// the peer with capped exponential backoff until the node itself shuts
// down, and performs the Hello handshake on the fresh connection. It
// returns nil only when the node closed while reconnecting.
func (t *TCPNode) redial(peer int, old net.Conn) net.Conn {
	old.Close()
	hello, err := wire.MarshalFrame(Hello{ID: t.cfg.ID}, t.cfg.MaxFrame)
	if err != nil {
		t.reportError(peer, fmt.Errorf("transport: encode handshake: %w", err))
		return nil
	}
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		conn, err := net.DialTimeout("tcp", t.cfg.Addrs[peer], time.Second)
		if err == nil {
			if _, err = conn.Write(hello); err == nil {
				t.connsMu.Lock()
				t.conns[peer] = conn
				t.connsMu.Unlock()
				t.stale[peer].Store(false)
				select {
				case <-t.closed:
					// Close may already have walked conns; make sure the
					// replacement cannot outlive the node.
					conn.Close()
					return nil
				default:
				}
				return conn
			}
			conn.Close()
		}
		select {
		case <-t.closed:
			return nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// nowTicks is wall time scaled into ticks, matching tcpRuntime.Now.
func (t *TCPNode) nowTicks() rt.Ticks {
	return rt.Ticks(time.Since(t.start) * time.Duration(rt.TicksPerD) / t.cfg.D)
}

func (t *TCPNode) observeMsg(event string, src, dst int, kind string, bytes int) {
	if t.cfg.Observer != nil {
		t.cfg.Observer.OnMsg(rt.MsgEvent{
			T: t.nowTicks(), Event: event, Src: src, Dst: dst,
			Kind: kind, Bytes: bytes,
		})
	}
}

// Addr is the node's actual listen address (useful when the config bound
// port 0).
func (t *TCPNode) Addr() string { return t.listener.Addr().String() }

// SetHandler installs the message handler; messages that arrived earlier
// (peers finish setup at different times) are delivered to it immediately.
func (t *TCPNode) SetHandler(h rt.Handler) { t.setHandler(h) }

// Runtime returns this node's rt.Runtime.
func (t *TCPNode) Runtime() rt.Runtime { return (*tcpRuntime)(t) }

// Crash crash-stops the node: it stops handling messages and blocked
// waits return rt.ErrCrashed. Connections stay open (peers need not
// distinguish a crashed node from a silent one).
func (t *TCPNode) Crash() { t.crash() }

// Close shuts the node down.
func (t *TCPNode) Close() {
	select {
	case <-t.closed:
		return
	default:
	}
	close(t.closed)
	if t.listener != nil {
		t.listener.Close()
	}
	t.connsMu.Lock()
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
	t.connsMu.Unlock()
	t.acceptedMu.Lock()
	for _, c := range t.accepted {
		c.Close()
	}
	t.acceptedMu.Unlock()
	t.wg.Wait()
}

type tcpRuntime TCPNode

var _ rt.Runtime = (*tcpRuntime)(nil)

func (r *tcpRuntime) ID() int { return r.cfg.ID }
func (r *tcpRuntime) N() int  { return len(r.cfg.Addrs) }
func (r *tcpRuntime) F() int  { return r.cfg.F }

func (r *tcpRuntime) Send(dst int, msg rt.Message) {
	out := r.outs[dst]
	if out == nil {
		return
	}
	(*TCPNode)(r).observeMsg(rt.MsgSend, r.cfg.ID, dst, msg.Kind(), wire.EncodedSize(msg))
	select {
	case out <- msg:
	default:
		panic(fmt.Sprintf("transport: outbound queue to node %d overflow", dst))
	}
}

func (r *tcpRuntime) Broadcast(msg rt.Message) {
	for dst := range r.cfg.Addrs {
		r.Send(dst, msg)
	}
}

func (r *tcpRuntime) Atomic(fn func()) { (*TCPNode)(r).atomic(fn) }

func (r *tcpRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	return (*TCPNode)(r).waitUntilThen(pred, then)
}

func (r *tcpRuntime) Now() rt.Ticks { return (*TCPNode)(r).nowTicks() }

func (r *tcpRuntime) Crashed() bool { return (*TCPNode)(r).crashed.Load() }
