package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"mpsnap/internal/rt"
)

// envelope is the wire frame: gob handles the rt.Message interface via the
// concrete types registered by each algorithm package.
type envelope struct {
	Src int
	Msg rt.Message
}

// hello is the connection handshake.
type hello struct{ ID int }

// TCPConfig parameterizes one TCP node.
type TCPConfig struct {
	// ID is this node's index into Addrs.
	ID int
	// Addrs lists every node's listen address ("host:port"), index =
	// node ID. len(Addrs) = n.
	Addrs []string
	// F is the resilience bound.
	F int
	// D is the real-time duration reported as one rt.TicksPerD when
	// converting wall-clock time to ticks (default 10ms). It does not
	// delay messages — real network latency applies.
	D time.Duration
	// DialTimeout bounds the total time spent connecting to each peer
	// (default 10s).
	DialTimeout time.Duration
	// Listener, if set, is used instead of listening on Addrs[ID]
	// (lets tests bind :0 first and distribute the real addresses).
	Listener net.Listener
}

// TCPNode is a node of a TCP-connected deployment. TCP's in-order
// delivery provides the FIFO channel property; reliability holds as long
// as connections stay up (crash-stop deployments; this transport does not
// re-deliver across reconnects).
type TCPNode struct {
	node
	cfg TCPConfig

	listener net.Listener
	start    time.Time

	sendMu sync.Mutex
	outs   []chan envelope // per-peer outbound queues
	conns  []net.Conn

	acceptedMu sync.Mutex
	accepted   []net.Conn

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewTCPNode starts listening, connects to all peers, and returns once
// the full mesh is up. Peers must be started within DialTimeout of each
// other.
func NewTCPNode(cfg TCPConfig) (*TCPNode, error) {
	if cfg.D == 0 {
		cfg.D = 10 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	n := len(cfg.Addrs)
	if cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("transport: id %d out of range", cfg.ID)
	}
	t := &TCPNode{
		cfg:    cfg,
		start:  time.Now(),
		outs:   make([]chan envelope, n),
		conns:  make([]net.Conn, n),
		closed: make(chan struct{}),
	}
	t.init()
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.ID], err)
		}
	}
	t.listener = ln

	// Accept inbound connections: each peer dials us once and sends a
	// hello; we then read frames from it forever.
	t.wg.Add(1)
	go t.acceptLoop()

	// Dial every peer (including ourselves, for uniform self-delivery
	// through the loopback).
	deadline := time.Now().Add(cfg.DialTimeout)
	for peer := 0; peer < n; peer++ {
		conn, err := dialUntil(cfg.Addrs[peer], deadline)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: node %d unreachable at %s (retried with backoff for %v): %w",
				peer, cfg.Addrs[peer], cfg.DialTimeout, err)
		}
		enc := gob.NewEncoder(conn)
		if err := enc.Encode(hello{ID: cfg.ID}); err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: handshake with node %d: %w", peer, err)
		}
		t.conns[peer] = conn
		out := make(chan envelope, 1<<14)
		t.outs[peer] = out
		t.wg.Add(1)
		go t.sendLoop(enc, out)
	}
	return t, nil
}

// dialUntil dials addr with bounded exponential backoff (50ms doubling to
// a 2s cap) until the deadline passes. Peers of a cluster may come up in
// any order, so early connection refusals are expected, not fatal; only a
// peer still unreachable once the whole budget is spent is an error.
func dialUntil(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		sleep := backoff
		if rem := time.Until(deadline); rem < sleep {
			sleep = rem
		}
		time.Sleep(sleep)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func (t *TCPNode) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.acceptedMu.Lock()
		t.accepted = append(t.accepted, conn)
		t.acceptedMu.Unlock()
		t.wg.Add(1)
		go t.recvLoop(conn)
	}
}

func (t *TCPNode) recvLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	src := h.ID
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // peer gone (crash-stop)
		}
		t.deliver(src, env.Msg)
	}
}

func (t *TCPNode) sendLoop(enc *gob.Encoder, out <-chan envelope) {
	defer t.wg.Done()
	for {
		select {
		case <-t.closed:
			return
		case env := <-out:
			if err := enc.Encode(env); err != nil {
				return // peer gone
			}
		}
	}
}

// SetHandler installs the message handler; messages that arrived earlier
// (peers finish setup at different times) are delivered to it immediately.
func (t *TCPNode) SetHandler(h rt.Handler) { t.setHandler(h) }

// Runtime returns this node's rt.Runtime.
func (t *TCPNode) Runtime() rt.Runtime { return (*tcpRuntime)(t) }

// Crash crash-stops the node: it stops handling messages and blocked
// waits return rt.ErrCrashed. Connections stay open (peers need not
// distinguish a crashed node from a silent one).
func (t *TCPNode) Crash() { t.crash() }

// Close shuts the node down.
func (t *TCPNode) Close() {
	select {
	case <-t.closed:
		return
	default:
	}
	close(t.closed)
	if t.listener != nil {
		t.listener.Close()
	}
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
	t.acceptedMu.Lock()
	for _, c := range t.accepted {
		c.Close()
	}
	t.acceptedMu.Unlock()
	t.wg.Wait()
}

type tcpRuntime TCPNode

var _ rt.Runtime = (*tcpRuntime)(nil)

func (r *tcpRuntime) ID() int { return r.cfg.ID }
func (r *tcpRuntime) N() int  { return len(r.cfg.Addrs) }
func (r *tcpRuntime) F() int  { return r.cfg.F }

func (r *tcpRuntime) Send(dst int, msg rt.Message) {
	out := r.outs[dst]
	if out == nil {
		return
	}
	select {
	case out <- envelope{Src: r.cfg.ID, Msg: msg}:
	default:
		panic(fmt.Sprintf("transport: outbound queue to node %d overflow", dst))
	}
}

func (r *tcpRuntime) Broadcast(msg rt.Message) {
	for dst := range r.cfg.Addrs {
		r.Send(dst, msg)
	}
}

func (r *tcpRuntime) Atomic(fn func()) { (*TCPNode)(r).atomic(fn) }

func (r *tcpRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	return (*TCPNode)(r).waitUntilThen(pred, then)
}

func (r *tcpRuntime) Now() rt.Ticks {
	return rt.Ticks(time.Since(r.start) * time.Duration(rt.TicksPerD) / r.cfg.D)
}

func (r *tcpRuntime) Crashed() bool {
	nd := (*TCPNode)(r)
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.crashed
}
