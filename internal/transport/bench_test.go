package transport_test

import (
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mpsnap/internal/rt"
	"mpsnap/internal/transport"
	"mpsnap/internal/wire"
)

// benchMsg is the test-local payload the transport benchmarks ship: a
// sequence number plus a small body, registered in the test tag range.
type benchMsg struct {
	Seq int
	Pad []byte
}

func (benchMsg) Kind() string { return "benchMsg" }

func init() {
	wire.Register(wire.Codec{
		Tag: wire.TestTagBase + 0x10, Proto: benchMsg{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			bm := m.(benchMsg)
			b.PutInt(bm.Seq)
			b.PutBytes(bm.Pad)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return benchMsg{Seq: d.Int(), Pad: d.Bytes()}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return benchMsg{Seq: rng.Intn(1 << 20), Pad: []byte("pad")}
		},
	})
}

// countingHandler counts deliveries (the protocol side of the benchmark
// mesh does no work, so the measured cost is the transport's own).
type countingHandler struct{ n atomic.Int64 }

func (h *countingHandler) HandleMessage(src int, msg rt.Message) { h.n.Add(1) }

// benchPair builds a two-node mesh and returns the sender runtime plus
// the receiver's delivery counter.
func benchPair(b *testing.B, legacy bool) (rt.Runtime, *countingHandler, func()) {
	b.Helper()
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*transport.TCPNode, 2)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			tn, err := transport.NewTCPNode(transport.TCPConfig{
				ID: i, Addrs: addrs, F: 0, D: 5 * time.Millisecond,
				Listener: listeners[i], Legacy: legacy,
			})
			nodes[i] = tn
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	h := &countingHandler{}
	nodes[0].SetHandler(h)
	nodes[1].SetHandler(&countingHandler{})
	return nodes[1].Runtime(), h, func() {
		for _, tn := range nodes {
			tn.Close()
		}
	}
}

// runDeliver ships b.N messages from node 1 to node 0 and waits for the
// last delivery, reporting allocations per delivered message.
func runDeliver(b *testing.B, legacy bool) {
	rtm, h, closeAll := benchPair(b, legacy)
	defer closeAll()
	pad := []byte("0123456789abcdef0123456789abcdef") // 32B body
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The outbound queue is bounded; pace the sender against the
		// receiver so the benchmark measures steady state, not overflow.
		for int(h.n.Load()) < i-4096 {
			time.Sleep(10 * time.Microsecond)
		}
		rtm.Send(0, benchMsg{Seq: i, Pad: pad})
	}
	for int(h.n.Load()) < b.N {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
}

// BenchmarkTCPDeliver measures the tuned transport path: pipelined
// dispatch, pooled buffers, coalesced writes.
func BenchmarkTCPDeliver(b *testing.B) { runDeliver(b, false) }

// BenchmarkTCPDeliverLegacy measures the pre-optimization path kept
// behind TCPConfig.Legacy (serial inline dispatch, per-frame writes).
func BenchmarkTCPDeliverLegacy(b *testing.B) { runDeliver(b, true) }
