// Package transport provides real-time implementations of the rt.Runtime
// interface, complementing the deterministic virtual-time simulator:
//
//   - ChanNet: in-process nodes connected by goroutine-backed FIFO
//     channels with injectable random delays (integration testing and the
//     examples);
//   - TCP: one node per process over internal/wire frames on TCP
//     (cmd/asonode), where the kernel's stream ordering provides FIFO.
//
// Both satisfy the paper's channel model: reliable FIFO point-to-point
// links. Atomicity of handlers and critical sections is provided by a
// per-node mutex; blocking waits use condition variables signalled on
// every state change.
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// node is the shared mutex/cond machinery of both transports.
type node struct {
	mu      sync.Mutex
	cond    *sync.Cond
	handler rt.Handler
	// crashed is atomic because the send path checks it without the node
	// lock, and crash/restart may flip it from another goroutine (the
	// chaos harness's mid-broadcast crash, the recovery path).
	crashed atomic.Bool
	// pending buffers messages that arrive before the handler is
	// installed (peers may finish their setup at different times;
	// reliable channels must not drop early traffic).
	pending []pendingMsg
}

type pendingMsg struct {
	src int
	msg rt.Message
}

func (nd *node) init() { nd.cond = sync.NewCond(&nd.mu) }

// deliver runs the handler atomically and wakes blocked waiters.
func (nd *node) deliver(src int, msg rt.Message) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.crashed.Load() {
		return
	}
	if nd.handler == nil {
		nd.pending = append(nd.pending, pendingMsg{src: src, msg: msg})
		return
	}
	nd.handler.HandleMessage(src, msg)
	nd.cond.Broadcast()
}

// deliverBatch delivers a burst of same-source messages in one critical
// section: one lock acquisition and one waiter wakeup for the whole
// batch instead of one each per message. Handlers in this model never
// block on waiters (they record state and return; waiters re-evaluate
// predicates only when the lock is free), so running k handler calls
// back-to-back under the lock is indistinguishable from k separate
// deliver calls that happened to win the lock consecutively — an
// ordering the concurrent transport always permitted.
func (nd *node) deliverBatch(src int, msgs []rt.Message) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	ran := false
	for _, msg := range msgs {
		if nd.crashed.Load() {
			break
		}
		if nd.handler == nil {
			nd.pending = append(nd.pending, pendingMsg{src: src, msg: msg})
			continue
		}
		nd.handler.HandleMessage(src, msg)
		ran = true
	}
	if ran {
		nd.cond.Broadcast()
	}
}

// setHandler installs the handler and flushes buffered deliveries.
func (nd *node) setHandler(h rt.Handler) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.handler = h
	for _, pm := range nd.pending {
		h.HandleMessage(pm.src, pm.msg)
	}
	nd.pending = nil
	nd.cond.Broadcast()
}

func (nd *node) atomic(fn func()) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	fn()
	nd.cond.Broadcast()
}

func (nd *node) waitUntilThen(pred func() bool, then func()) error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for !pred() {
		if nd.crashed.Load() {
			return rt.ErrCrashed
		}
		nd.cond.Wait()
	}
	if nd.crashed.Load() {
		return rt.ErrCrashed
	}
	then()
	nd.cond.Broadcast()
	return nil
}

func (nd *node) crash() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.crashed.Store(true)
	nd.cond.Broadcast()
}

// restart clears the crash flag and installs the recovered incarnation's
// handler in one critical section, so no message can reach the old
// handler after the node is back. Messages that arrived during the
// downtime were dropped (the model's crashed-receiver semantics); any
// buffered pre-install deliveries belonged to the old incarnation and are
// discarded with it.
func (nd *node) restart(h rt.Handler) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.crashed.Store(false)
	nd.handler = h
	nd.pending = nil
	nd.cond.Broadcast()
}

// ChanNet is an in-process cluster connected by channel-backed links.
type ChanNet struct {
	n, f        int
	d           time.Duration
	copyThrough bool
	obs         rt.Observer
	nodes       []*chanNode
	rng         *rand.Rand
	rngMu       sync.Mutex
	start       time.Time
	wg          sync.WaitGroup
	done        chan struct{}
}

type chanNode struct {
	node
	net *ChanNet
	id  int
	out []chan timedMsg // per-destination FIFO queues
}

type timedMsg struct {
	src     int
	msg     rt.Message
	notBefo time.Time
}

// ChanConfig parameterizes a ChanNet.
type ChanConfig struct {
	// N nodes with resilience bound F.
	N, F int
	// D is the real-time duration standing in for the maximum message
	// delay (default 2ms). Each message is delayed uniformly in (0, D].
	D time.Duration
	// Seed drives the delay randomness.
	Seed int64
	// CopyThrough round-trips every sent message through the internal/wire
	// codec, so in-process tests exercise exactly the encodings a TCP
	// deployment would (and share no memory between sender and receiver).
	// A codec failure panics: it is a registration or canonicality bug.
	CopyThrough bool
	// Observer, if set, receives a rt.MsgEvent for every send and
	// delivery. It is called concurrently from sender goroutines and the
	// per-link delivery goroutines, so it must be concurrency-safe and
	// non-blocking (internal/obs implementations are).
	Observer rt.Observer
}

// NewChanNet builds the cluster. Set handlers with SetHandler before
// sending traffic; call Close when done.
func NewChanNet(cfg ChanConfig) *ChanNet {
	if cfg.D == 0 {
		cfg.D = 2 * time.Millisecond
	}
	net := &ChanNet{
		n:           cfg.N,
		f:           cfg.F,
		d:           cfg.D,
		copyThrough: cfg.CopyThrough,
		obs:         cfg.Observer,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		start:       time.Now(),
		done:        make(chan struct{}),
	}
	net.nodes = make([]*chanNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nd := &chanNode{net: net, id: i, out: make([]chan timedMsg, cfg.N)}
		nd.init()
		net.nodes[i] = nd
	}
	// One goroutine per (src,dst) link preserves FIFO while applying
	// per-message delays.
	for src := 0; src < cfg.N; src++ {
		for dst := 0; dst < cfg.N; dst++ {
			ch := make(chan timedMsg, 1<<16)
			net.nodes[src].out[dst] = ch
			dstNode := net.nodes[dst]
			net.wg.Add(1)
			go func() {
				defer net.wg.Done()
				for {
					select {
					case <-net.done:
						return
					case tm := <-ch:
						if wait := time.Until(tm.notBefo); wait > 0 {
							select {
							case <-time.After(wait):
							case <-net.done:
								return
							}
						}
						net.observeMsg(rt.MsgDeliver, tm.src, dst, tm.msg)
						dstNode.deliver(tm.src, tm.msg)
					}
				}
			}()
		}
	}
	return net
}

// SetHandler installs node id's message handler; messages that arrived
// earlier are delivered to it immediately.
func (c *ChanNet) SetHandler(id int, h rt.Handler) { c.nodes[id].setHandler(h) }

// Runtime returns node id's rt.Runtime.
func (c *ChanNet) Runtime(id int) rt.Runtime { return &chanRuntime{net: c, nd: c.nodes[id]} }

// Crash crash-stops node id.
func (c *ChanNet) Crash(id int) { c.nodes[id].crash() }

// Restart brings a crashed node back with the recovered incarnation's
// handler (crash-recovery). The node resumes receiving and sending; its
// per-link FIFO queues were never torn down, so channel ordering survives
// the downtime.
func (c *ChanNet) Restart(id int, h rt.Handler) { c.nodes[id].restart(h) }

// Close tears the cluster down.
func (c *ChanNet) Close() {
	close(c.done)
	c.wg.Wait()
}

// nowTicks is wall time scaled into ticks, matching chanRuntime.Now.
func (c *ChanNet) nowTicks() rt.Ticks {
	return rt.Ticks(time.Since(c.start) * time.Duration(rt.TicksPerD) / c.d)
}

func (c *ChanNet) observeMsg(event string, src, dst int, msg rt.Message) {
	if c.obs != nil {
		c.obs.OnMsg(rt.MsgEvent{
			T: c.nowTicks(), Event: event, Src: src, Dst: dst,
			Kind: msg.Kind(), Bytes: wire.EncodedSize(msg),
		})
	}
}

func (c *ChanNet) delay() time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(c.d))) + 1
}

type chanRuntime struct {
	net *ChanNet
	nd  *chanNode
}

var _ rt.Runtime = (*chanRuntime)(nil)

func (r *chanRuntime) ID() int { return r.nd.id }
func (r *chanRuntime) N() int  { return r.net.n }
func (r *chanRuntime) F() int  { return r.net.f }

func (r *chanRuntime) Send(dst int, msg rt.Message) {
	if r.nd.crashed.Load() { // crashed nodes stop sending
		return
	}
	if r.net.copyThrough && wire.Marshalable(msg) {
		m, err := wire.Roundtrip(msg)
		if err != nil {
			panic(fmt.Sprintf("transport: copy-through %d->%d: %v", r.nd.id, dst, err))
		}
		msg = m
	}
	tm := timedMsg{src: r.nd.id, msg: msg, notBefo: time.Now().Add(r.net.delay())}
	r.net.observeMsg(rt.MsgSend, r.nd.id, dst, msg)
	select {
	case r.nd.out[dst] <- tm:
	default:
		panic(fmt.Sprintf("transport: link %d->%d overflow", r.nd.id, dst))
	}
}

func (r *chanRuntime) Broadcast(msg rt.Message) {
	for dst := 0; dst < r.net.n; dst++ {
		r.Send(dst, msg)
	}
}

func (r *chanRuntime) Atomic(fn func()) { r.nd.atomic(fn) }

func (r *chanRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	return r.nd.waitUntilThen(pred, then)
}

func (r *chanRuntime) Now() rt.Ticks { return r.net.nowTicks() }

func (r *chanRuntime) Crashed() bool { return r.nd.crashed.Load() }
