package transport_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/transport"
)

// runRealTimeWorkload drives an EQ-ASO cluster whose nodes expose real
// goroutine-based runtimes: every node updates and scans concurrently,
// and the recorded history must be linearizable.
func runRealTimeWorkload(t *testing.T, nodes []*eqaso.Node, now func(i int) rt.Ticks, n int) {
	t.Helper()
	rec := history.NewRecorder(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= 3; k++ {
				v := fmt.Sprintf("v%d-%d", i, k)
				p := rec.BeginUpdate(i, v, now(i))
				if err := nodes[i].Update([]byte(v)); err != nil {
					t.Errorf("node %d update: %v", i, err)
					return
				}
				p.End(now(i))
				ps := rec.BeginScan(i, now(i))
				snap, err := nodes[i].Scan()
				if err != nil {
					t.Errorf("node %d scan: %v", i, err)
					return
				}
				ps.EndScan(harness.SnapStrings(snap), now(i))
				if got := harness.SnapStrings(snap)[i]; got != v {
					t.Errorf("node %d scan misses own value: got %q want %q", i, got, v)
				}
			}
		}()
	}
	wg.Wait()
	h := rec.History()
	if rep := h.CheckLinearizable(); !rep.OK {
		t.Fatalf("real-time history not linearizable: %v", rep.Violations[0])
	}
}

func TestChanNetEQASO(t *testing.T) {
	const n, f = 4, 1
	net := transport.NewChanNet(transport.ChanConfig{N: n, F: f, D: time.Millisecond, Seed: 1})
	defer net.Close()
	nodes := make([]*eqaso.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = eqaso.New(net.Runtime(i))
		net.SetHandler(i, nodes[i])
	}
	runRealTimeWorkload(t, nodes, func(i int) rt.Ticks { return net.Runtime(i).Now() }, n)
}

func TestChanNetCrash(t *testing.T) {
	const n, f = 4, 1
	cnet := transport.NewChanNet(transport.ChanConfig{N: n, F: f, D: time.Millisecond, Seed: 2})
	defer cnet.Close()
	nodes := make([]*eqaso.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = eqaso.New(cnet.Runtime(i))
		cnet.SetHandler(i, nodes[i])
	}
	cnet.Crash(3)
	// A crashed node's operations fail; the rest keep working.
	if err := nodes[3].Update([]byte("x")); err == nil {
		t.Fatal("update on crashed node should fail")
	}
	if err := nodes[0].Update([]byte("a")); err != nil {
		t.Fatalf("update: %v", err)
	}
	snap, err := nodes[1].Scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if string(snap[0]) != "a" {
		t.Fatalf("scan = %v", harness.SnapStrings(snap))
	}
}

func TestTCPEQASO(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp loopback test")
	}
	const n, f = 4, 1
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tnodes := make([]*transport.TCPNode, n)
	nodes := make([]*eqaso.Node, n)
	var setup sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		setup.Add(1)
		go func() {
			defer setup.Done()
			tn, err := transport.NewTCPNode(transport.TCPConfig{
				ID:       i,
				Addrs:    addrs,
				F:        f,
				D:        5 * time.Millisecond,
				Listener: listeners[i],
			})
			if err != nil {
				errs[i] = err
				return
			}
			tnodes[i] = tn
			nodes[i] = eqaso.New(tn.Runtime())
			tn.SetHandler(nodes[i])
		}()
	}
	setup.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d setup: %v", i, err)
		}
	}
	defer func() {
		for _, tn := range tnodes {
			if tn != nil {
				tn.Close()
			}
		}
	}()
	runRealTimeWorkload(t, nodes, func(i int) rt.Ticks { return tnodes[i].Runtime().Now() }, n)
}
