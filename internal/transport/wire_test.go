package transport_test

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/transport"
	"mpsnap/internal/wire"
)

// startMesh brings up an n-node TCP mesh on loopback with an error hook
// per node and returns the nodes plus a per-node error sink.
func startMesh(t *testing.T, n, f int) ([]*transport.TCPNode, []*eqaso.Node, func() []error) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var errMu sync.Mutex
	var surfaced []error
	tnodes := make([]*transport.TCPNode, n)
	nodes := make([]*eqaso.Node, n)
	var setup sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		setup.Add(1)
		go func() {
			defer setup.Done()
			tn, err := transport.NewTCPNode(transport.TCPConfig{
				ID:       i,
				Addrs:    addrs,
				F:        f,
				D:        5 * time.Millisecond,
				Listener: listeners[i],
				OnError: func(peer int, err error) {
					errMu.Lock()
					surfaced = append(surfaced, err)
					errMu.Unlock()
				},
			})
			if err != nil {
				errs[i] = err
				return
			}
			tnodes[i] = tn
			nodes[i] = eqaso.New(tn.Runtime())
			tn.SetHandler(nodes[i])
		}()
	}
	setup.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d setup: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tn := range tnodes {
			if tn != nil {
				tn.Close()
			}
		}
	})
	return tnodes, nodes, func() []error {
		errMu.Lock()
		defer errMu.Unlock()
		return append([]error(nil), surfaced...)
	}
}

// dialRaw opens a raw connection to addr and performs the wire handshake
// claiming node id.
func dialRaw(t *testing.T, addr string, id int) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.MarshalFrame(transport.Hello{ID: id}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	return conn
}

func waitForError(t *testing.T, get func() []error, want string) error {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, err := range get() {
			if strings.Contains(err.Error(), want) {
				return err
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no surfaced error containing %q; got %v", want, get())
	return nil
}

// TestTCPDecodeErrorClosesOnlyThatConnection is the regression test for
// the silent recv-loop exit: garbage on one peer connection must close
// that connection and surface a descriptive error, while the rest of the
// mesh keeps serving operations.
func TestTCPDecodeErrorClosesOnlyThatConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp loopback test")
	}
	const n, f = 3, 1
	tnodes, nodes, surfaced := startMesh(t, n, f)

	// A rogue "peer" handshakes as node 2, then emits a frame with a bad
	// version byte.
	rogue := dialRaw(t, tcpAddr(tnodes, 0), 2)
	defer rogue.Close()
	if _, err := rogue.Write([]byte{0xFF, 0, 0, 0, 1, 42}); err != nil {
		t.Fatal(err)
	}
	err := waitForError(t, surfaced, "peer 2")
	if !errors.Is(err, wire.ErrBadVersion) {
		t.Fatalf("surfaced error = %v, want ErrBadVersion", err)
	}
	// The rogue connection is closed by the node...
	rogue.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, rerr := rogue.Read(make([]byte, 1)); rerr == nil {
		t.Fatal("rogue connection still open after decode error")
	}
	// ...and the real mesh still completes operations end to end.
	if err := nodes[1].Update([]byte("alive")); err != nil {
		t.Fatalf("update after decode error: %v", err)
	}
	snap, err := nodes[0].Scan()
	if err != nil {
		t.Fatalf("scan after decode error: %v", err)
	}
	if got := harness.SnapStrings(snap)[1]; got != "alive" {
		t.Fatalf("scan = %v, want node 1 = alive", harness.SnapStrings(snap))
	}
}

// tcpAddr is node i's actual listen address.
func tcpAddr(tnodes []*transport.TCPNode, i int) string {
	return tnodes[i].Addr()
}

// TestTCPOversizedFrameRejected: a corrupt length prefix larger than the
// cap must be rejected before any allocation and surfaced.
func TestTCPOversizedFrameRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp loopback test")
	}
	const n, f = 3, 1
	tnodes, nodes, surfaced := startMesh(t, n, f)

	rogue := dialRaw(t, tcpAddr(tnodes, 0), 2)
	defer rogue.Close()
	hdr := make([]byte, wire.HeaderLen)
	hdr[0] = wire.Version
	binary.BigEndian.PutUint32(hdr[1:], 0xFFFFFFF0) // ~4GiB claimed payload
	if _, err := rogue.Write(hdr); err != nil {
		t.Fatal(err)
	}
	err := waitForError(t, surfaced, "peer 2")
	if !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("surfaced error = %v, want ErrFrameTooLarge", err)
	}
	if err := nodes[1].Update([]byte("still-up")); err != nil {
		t.Fatalf("update after oversized frame: %v", err)
	}
}

// TestTCPUnknownTagSurfaced: a well-framed payload with an unregistered
// tag is a decode error, not a crash or a silent drop.
func TestTCPUnknownTagSurfaced(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp loopback test")
	}
	const n, f = 3, 1
	tnodes, _, surfaced := startMesh(t, n, f)

	rogue := dialRaw(t, tcpAddr(tnodes, 0), 1)
	defer rogue.Close()
	var b wire.Buffer
	b.PutUvarint(0xEFFF) // below TestTagBase, never registered
	frame, err := wire.AppendFrame(nil, b.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rogue.Write(frame); err != nil {
		t.Fatal(err)
	}
	serr := waitForError(t, surfaced, "peer 1")
	if !errors.Is(serr, wire.ErrUnknownTag) {
		t.Fatalf("surfaced error = %v, want ErrUnknownTag", serr)
	}
}

// TestTCPReconnectAfterPeerRestart is the regression test for the
// crash-recovery rejoin path over TCP: when a peer's process dies and a
// new incarnation comes back on the same address, the surviving node's
// send loop must redial (its old outbound connection died with the old
// process) so the restarted peer receives the messages it is owed —
// without it, a recovered `asonode -wal` would starve on its first
// post-restart operation, never seeing the mesh's replies.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp loopback test")
	}
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}

	newNode := func(id int, ln net.Listener, got chan<- int) *transport.TCPNode {
		t.Helper()
		cfg := transport.TCPConfig{ID: id, Addrs: addrs, F: 0, D: 5 * time.Millisecond, Listener: ln}
		tn, err := transport.NewTCPNode(cfg)
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		tn.SetHandler(rtHandlerCapture(got))
		return tn
	}
	// Nodes dial each other concurrently (NewTCPNode waits for the full
	// mesh, so bringing them up serially would deadlock).
	gotA := make(chan int, 16)
	gotB := make(chan int, 16)
	var a *transport.TCPNode
	done := make(chan struct{})
	go func() { a = newNode(0, lnA, gotA); close(done) }()
	b1 := newNode(1, lnB, gotB)
	<-done
	defer a.Close()

	recv := func(ch <-chan int, want int, when string) {
		t.Helper()
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("%s: delivered %d, want %d", when, got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: no delivery of %d", when, want)
		}
	}
	a.Runtime().Send(1, transport.Hello{ID: 7})
	recv(gotB, 7, "before restart")

	// The peer's process dies; give the survivor's receive loop a moment
	// to observe the EOF and flag the outbound connection stale.
	b1.Close()
	time.Sleep(100 * time.Millisecond)

	// A new incarnation comes up on the same address. Its NewTCPNode
	// blocks until it reaches every peer, so once it returns the mesh is
	// re-formed from its side; the survivor's side must self-heal.
	gotB2 := make(chan int, 16)
	lnB2, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	b2 := newNode(1, lnB2, gotB2)
	defer b2.Close()

	a.Runtime().Send(1, transport.Hello{ID: 8})
	recv(gotB2, 8, "after restart")
	// And the restarted incarnation reaches the survivor on fresh dials.
	b2.Runtime().Send(0, transport.Hello{ID: 9})
	recv(gotA, 9, "restarted node to survivor")
}

// rtHandlerCapture forwards the IDs of delivered Hello payloads.
func rtHandlerCapture(got chan<- int) rt.HandlerFunc {
	return func(src int, msg rt.Message) {
		if h, ok := msg.(transport.Hello); ok {
			got <- h.ID
		}
	}
}

// TestTCPCleanCloseSilent: a peer that just disconnects (crash-stop) must
// not surface a wire error.
func TestTCPCleanCloseSilent(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp loopback test")
	}
	const n, f = 3, 1
	tnodes, _, surfaced := startMesh(t, n, f)

	rogue := dialRaw(t, tcpAddr(tnodes, 0), 2)
	rogue.Close()
	time.Sleep(100 * time.Millisecond)
	if errs := surfaced(); len(errs) != 0 {
		t.Fatalf("clean close surfaced errors: %v", errs)
	}
	_ = tnodes
}
