package transport_test

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mpsnap/internal/rt"
	"mpsnap/internal/transport"
	"mpsnap/internal/wire"
)

// startRawMesh brings up an n-node TCP mesh with the given handlers
// installed (no protocol on top — the tests drive the transport
// directly). Reuses benchMsg from bench_test.go as the payload.
func startRawMesh(t *testing.T, handlers []rt.Handler, legacy bool) []*transport.TCPNode {
	t.Helper()
	n := len(handlers)
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*transport.TCPNode, n)
	errs := make([]error, n)
	var setup sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		setup.Add(1)
		go func() {
			defer setup.Done()
			nodes[i], errs[i] = transport.NewTCPNode(transport.TCPConfig{
				ID: i, Addrs: addrs, F: 0, D: 5 * time.Millisecond,
				Listener: listeners[i], Legacy: legacy,
			})
		}()
	}
	setup.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d setup: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.Close()
		}
	})
	for i, h := range handlers {
		nodes[i].SetHandler(h)
	}
	return nodes
}

// fifoHandler asserts per-source FIFO delivery: each source's benchMsg
// sequence numbers must arrive in exactly the order they were sent.
type fifoHandler struct {
	mu        sync.Mutex
	next      map[int]int // src -> next expected Seq
	delivered int
	violation error
}

func (h *fifoHandler) HandleMessage(src int, msg rt.Message) {
	bm := msg.(benchMsg)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.next == nil {
		h.next = map[int]int{}
	}
	if want := h.next[src]; bm.Seq != want && h.violation == nil {
		h.violation = fmt.Errorf("from src %d: got Seq %d, want %d", src, bm.Seq, want)
	}
	h.next[src] = bm.Seq + 1
	h.delivered++
}

func (h *fifoHandler) status() (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.delivered, h.violation
}

// TestTCPPerSourceFIFO is the property test for the pipelined inbound
// dispatch path: several peers concurrently blast sequence-numbered
// messages at one node, and every source's sequence must be delivered
// gap-free and in order even though framing/decode and handler execution
// now run on different goroutines. Run with -race this also exercises
// the dispatcher's publication safety.
func TestTCPPerSourceFIFO(t *testing.T) {
	const senders = 3
	const perSender = 2000
	sink := &fifoHandler{}
	handlers := make([]rt.Handler, senders+1)
	handlers[0] = sink
	for i := 1; i <= senders; i++ {
		handlers[i] = &fifoHandler{}
	}
	nodes := startRawMesh(t, handlers, false)

	var wg sync.WaitGroup
	for i := 1; i <= senders; i++ {
		rtm := nodes[i].Runtime()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Vary the payload size so frames straddle read-buffer
			// boundaries at unpredictable offsets.
			pad := []byte("0123456789abcdef0123456789abcdef")
			for seq := 0; seq < perSender; seq++ {
				rtm.Send(0, benchMsg{Seq: seq, Pad: pad[:seq%len(pad)]})
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		got, violation := sink.status()
		if violation != nil {
			t.Fatalf("FIFO violation: %v", violation)
		}
		if got == senders*perSender {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d messages", got, senders*perSender)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPSendBatchCapStalledReader is the regression test for the
// pending-buffer cap: a receiver that stops reading lets the sender's
// socket back up, so the send loop's gather phase sees an always-hot
// queue. The batch must be cut at maxSendBatch and handed to the
// (blocking) write instead of gathering without bound, and when the
// reader resumes every frame must arrive intact and in order — the cap
// interacts with the redial invariant (pending is cleared only after a
// successful write), so this pins down both.
//
// The peer at index 1 is not a TCPNode but a raw listener the test
// controls, which is what makes the read stall possible.
func TestTCPSendBatchCapStalledReader(t *testing.T) {
	const msgs = 2000
	pad := make([]byte, 1024) // ~2MB total: well past maxSendBatch (64KB)

	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	own, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{own.Addr().String(), fake.Addr().String()}

	type recvResult struct {
		seqs []int
		err  error
	}
	got := make(chan recvResult, 1)
	release := make(chan struct{})
	go func() {
		conn, err := fake.Accept()
		if err != nil {
			got <- recvResult{err: err}
			return
		}
		defer conn.Close()
		<-release // stall: accept the connection but read nothing yet
		r := bufio.NewReaderSize(conn, 64<<10)
		var buf []byte
		res := recvResult{}
		for len(res.seqs) < msgs {
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			payload, err := wire.ReadFrame(r, buf, 0)
			if err != nil {
				res.err = err
				break
			}
			buf = payload
			msg, err := wire.Unmarshal(payload)
			if err != nil {
				res.err = err
				break
			}
			if _, ok := msg.(transport.Hello); ok {
				continue
			}
			res.seqs = append(res.seqs, msg.(benchMsg).Seq)
		}
		got <- res
	}()

	tn, err := transport.NewTCPNode(transport.TCPConfig{
		ID: 0, Addrs: addrs, F: 0, D: 5 * time.Millisecond, Listener: own,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	tn.SetHandler(&fifoHandler{})

	rtm := tn.Runtime()
	for seq := 0; seq < msgs; seq++ {
		rtm.Send(1, benchMsg{Seq: seq, Pad: pad})
	}
	// Give the send loop time to gather against the stalled socket, then
	// let the reader drain.
	time.Sleep(200 * time.Millisecond)
	close(release)

	res := <-got
	if res.err != nil {
		t.Fatalf("receiver failed after %d messages: %v", len(res.seqs), res.err)
	}
	for i, seq := range res.seqs {
		if seq != i {
			t.Fatalf("position %d: got Seq %d, want %d (reordered or dropped under the batch cap)", i, seq, i)
		}
	}
}

// TestTCPFlushTimerSolitaryFrame pins the flush timer's liveness: a
// frame with no follow-up traffic must still reach the peer once the
// coalescing window expires — the batch write may not wait for a
// successor that never comes. A generous FlushDelay makes a stuck timer
// path show up as a timeout rather than a flake.
func TestTCPFlushTimerSolitaryFrame(t *testing.T) {
	sink := &fifoHandler{}
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*transport.TCPNode, 2)
	errs := make([]error, 2)
	var setup sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		setup.Add(1)
		go func() {
			defer setup.Done()
			nodes[i], errs[i] = transport.NewTCPNode(transport.TCPConfig{
				ID: i, Addrs: addrs, F: 0, D: 5 * time.Millisecond,
				Listener: listeners[i], FlushDelay: 50 * time.Millisecond,
			})
		}()
	}
	setup.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d setup: %v", i, err)
		}
	}
	defer func() {
		for _, tn := range nodes {
			tn.Close()
		}
	}()
	nodes[0].SetHandler(sink)
	nodes[1].SetHandler(&fifoHandler{})

	start := time.Now()
	nodes[1].Runtime().Send(0, benchMsg{Seq: 0, Pad: []byte("solo")})
	deadline := start.Add(5 * time.Second)
	for {
		if got, _ := sink.status(); got == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("solitary frame never delivered: the flush timer did not fire")
		}
		time.Sleep(time.Millisecond)
	}
}
