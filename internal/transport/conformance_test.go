package transport_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mpsnap/internal/baseline/delporte"
	"mpsnap/internal/baseline/laaso"
	"mpsnap/internal/baseline/storecollect"
	"mpsnap/internal/byzaso"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/sso"
	"mpsnap/internal/transport"
)

type object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

// TestAllAlgorithmsOverChanTransport: the same algorithms that pass the
// simulator conformance battery run over real goroutines, channels, and
// wall-clock delays — with genuine parallelism — and their histories stay
// consistent. This is the strongest evidence the rt abstraction didn't
// hide real concurrency bugs (run with -race in CI).
func TestAllAlgorithmsOverChanTransport(t *testing.T) {
	cases := []struct {
		name       string
		minNOver3F bool
		sso        bool
		mk         func(r rt.Runtime) (rt.Handler, object)
	}{
		{name: "eqaso", mk: func(r rt.Runtime) (rt.Handler, object) {
			nd := eqaso.New(r)
			return nd, nd
		}},
		{name: "sso", sso: true, mk: func(r rt.Runtime) (rt.Handler, object) {
			nd := sso.New(r)
			return nd, nd
		}},
		{name: "byzaso", minNOver3F: true, mk: func(r rt.Runtime) (rt.Handler, object) {
			nd := byzaso.New(r)
			return nd, nd
		}},
		{name: "delporte", mk: func(r rt.Runtime) (rt.Handler, object) {
			nd := delporte.New(r)
			return nd, nd
		}},
		{name: "storecollect", mk: func(r rt.Runtime) (rt.Handler, object) {
			nd := storecollect.New(r)
			return nd, nd
		}},
		{name: "laaso", mk: func(r rt.Runtime) (rt.Handler, object) {
			nd := laaso.New(r)
			return nd, nd
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n, f := 4, 1
			if tc.minNOver3F {
				n, f = 4, 1 // 4 > 3·1
			}
			// CopyThrough: every message of every algorithm crosses the
			// internal/wire codec, so this battery also proves total codec
			// coverage with canonical (re-encodable) encodings.
			net := transport.NewChanNet(transport.ChanConfig{N: n, F: f, D: time.Millisecond, Seed: 7, CopyThrough: true})
			defer net.Close()
			objs := make([]object, n)
			rts := make([]rt.Runtime, n)
			for i := 0; i < n; i++ {
				rts[i] = net.Runtime(i)
				h, obj := tc.mk(rts[i])
				net.SetHandler(i, h)
				objs[i] = obj
			}
			rec := history.NewRecorder(n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 1; k <= 3; k++ {
						v := fmt.Sprintf("v%d-%d", i, k)
						p := rec.BeginUpdate(i, v, rts[i].Now())
						if err := objs[i].Update([]byte(v)); err != nil {
							t.Errorf("update: %v", err)
							return
						}
						p.End(rts[i].Now())
						ps := rec.BeginScan(i, rts[i].Now())
						snap, err := objs[i].Scan()
						if err != nil {
							t.Errorf("scan: %v", err)
							return
						}
						ps.EndScan(harness.SnapStrings(snap), rts[i].Now())
					}
				}()
			}
			wg.Wait()
			h := rec.History()
			if tc.sso {
				if rep := h.CheckSequentiallyConsistent(); !rep.OK {
					t.Fatalf("not sequentially consistent: %v", rep.Violations[0])
				}
				return
			}
			if rep := h.CheckLinearizable(); !rep.OK {
				t.Fatalf("not linearizable: %v", rep.Violations[0])
			}
		})
	}
}
