package sim

import (
	"runtime/debug"

	"mpsnap/internal/rt"
)

func debugStack() string { return string(debug.Stack()) }

// nodeRuntime adapts a World node to the rt.Runtime interface. Because the
// whole simulation is serialized by the scheduler, Atomic is trivial and
// blocking waits go through the Proc handoff protocol.
type nodeRuntime struct {
	w  *World
	id int
}

var _ rt.Runtime = (*nodeRuntime)(nil)

func (r *nodeRuntime) ID() int { return r.id }
func (r *nodeRuntime) N() int  { return r.w.cfg.N }
func (r *nodeRuntime) F() int  { return r.w.cfg.F }

func (r *nodeRuntime) Send(dst int, msg rt.Message) { r.w.send(r.id, dst, msg) }
func (r *nodeRuntime) Broadcast(msg rt.Message)     { r.w.broadcast(r.id, msg) }

func (r *nodeRuntime) Atomic(fn func()) { fn() }

func (r *nodeRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	p := r.w.current
	if p == nil {
		panic("sim: WaitUntilThen called outside a process (handlers must not block)")
	}
	return p.waitUntilThen(r.id, label, pred, then)
}

func (r *nodeRuntime) Now() rt.Ticks { return r.w.now }

func (r *nodeRuntime) Crashed() bool { return r.w.nodes[r.id].crashed }
