package sim

import "mpsnap/internal/rt"

// Adversary intercepts broadcasts, deciding which destinations the sender
// reaches before (possibly) crashing. This is the mechanism behind the
// paper's failure chains (Definition 11): a node crashes "while sending v
// to other nodes", so only a prefix of the destinations receives it.
type Adversary interface {
	// OnBroadcast is consulted once per broadcast. dsts is the full
	// destination list (all nodes). The returned slice is the set of
	// destinations actually sent to, in order; if crashAfter is true the
	// sender crashes immediately after those sends complete.
	OnBroadcast(now rt.Ticks, src int, msg rt.Message, dsts []int) (send []int, crashAfter bool)
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(now rt.Ticks, src int, msg rt.Message, dsts []int) ([]int, bool)

// OnBroadcast implements Adversary.
func (f AdversaryFunc) OnBroadcast(now rt.Ticks, src int, msg rt.Message, dsts []int) ([]int, bool) {
	return f(now, src, msg, dsts)
}

// ChainSpec describes one failure chain p_1, ..., p_m (Definition 11):
// p_1 invokes an UPDATE and crashes while sending its value, reaching only
// p_2; each intermediate p_i crashes while forwarding, reaching only
// p_{i+1}; the final node is correct and forwards the value to everyone.
// Nodes[0..m-2] are consumed as faulty nodes; Nodes[m-1] stays correct.
type ChainSpec struct {
	Nodes []int
}

// FailureChains is the adversary that realizes a set of failure chains.
// It identifies the value of a chain by the key of the first matching
// broadcast made by the chain's head, then tracks that value through
// forwards. KeyOf must return a comparable identity for forwardable value
// messages (e.g. the value's timestamp) and ok=false for everything else.
type FailureChains struct {
	KeyOf  func(msg rt.Message) (key any, ok bool)
	chains []ChainSpec

	headToChain map[int]int // unstarted chains, by head node
	assigned    map[any]int // value key -> chain index
	posInChain  []map[int]int
}

// NewFailureChains builds the adversary for the given chains.
func NewFailureChains(keyOf func(rt.Message) (any, bool), chains ...ChainSpec) *FailureChains {
	fc := &FailureChains{
		KeyOf:       keyOf,
		chains:      chains,
		headToChain: make(map[int]int),
		assigned:    make(map[any]int),
	}
	fc.posInChain = make([]map[int]int, len(chains))
	for ci, c := range chains {
		if len(c.Nodes) < 2 {
			panic("sim: failure chain needs at least 2 nodes")
		}
		fc.headToChain[c.Nodes[0]] = ci
		fc.posInChain[ci] = make(map[int]int, len(c.Nodes))
		for i, node := range c.Nodes {
			fc.posInChain[ci][node] = i
		}
	}
	return fc
}

// FaultyNodes returns all nodes the chains will crash (every chain node
// except the last of each chain).
func (fc *FailureChains) FaultyNodes() []int {
	var out []int
	for _, c := range fc.chains {
		out = append(out, c.Nodes[:len(c.Nodes)-1]...)
	}
	return out
}

// OnBroadcast implements Adversary.
func (fc *FailureChains) OnBroadcast(now rt.Ticks, src int, msg rt.Message, dsts []int) ([]int, bool) {
	key, ok := fc.KeyOf(msg)
	if !ok {
		return dsts, false
	}
	ci, tracked := fc.assigned[key]
	if !tracked {
		// A chain starts when its head broadcasts a value for the
		// first time.
		hc, isHead := fc.headToChain[src]
		if !isHead {
			return dsts, false
		}
		delete(fc.headToChain, src)
		fc.assigned[key] = hc
		ci = hc
	}
	chain := fc.chains[ci].Nodes
	i, inChain := fc.posInChain[ci][src]
	if !inChain || i == len(chain)-1 {
		// The terminal (correct) node — or an unrelated node that
		// somehow got the value — broadcasts normally.
		return dsts, false
	}
	// Faulty hop: reach only the next chain node, then crash.
	return []int{chain[i+1]}, true
}

// BuildChains constructs chains of increasing length 2, 3, 4, ... from a
// budget of faultyBudget crash faults, drawing faulty nodes from faultyPool
// (each used at most once) and terminating every chain at the correct node
// terminal. A chain of length m consumes m-1 faulty nodes. It returns the
// chains and the number of faulty nodes actually consumed.
func BuildChains(faultyPool []int, faultyBudget int, terminal int) ([]ChainSpec, int) {
	var chains []ChainSpec
	used := 0
	next := 0
	for length := 2; ; length++ {
		need := length - 1
		if used+need > faultyBudget || next+need > len(faultyPool) {
			break
		}
		nodes := make([]int, 0, length)
		nodes = append(nodes, faultyPool[next:next+need]...)
		nodes = append(nodes, terminal)
		chains = append(chains, ChainSpec{Nodes: nodes})
		next += need
		used += need
	}
	return chains, used
}
