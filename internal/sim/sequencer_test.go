package sim

import (
	"testing"

	"mpsnap/internal/rt"
)

// pickLast always chooses the last eligible event.
type pickLast struct{ steps int }

func (p *pickLast) Next(eligible []EventInfo) int {
	p.steps++
	return len(eligible) - 1
}

// TestSequencerPreservesChannelFIFO: whatever the sequencer chooses, two
// messages on the same channel are delivered in send order (only the
// channel head is ever eligible).
func TestSequencerPreservesChannelFIFO(t *testing.T) {
	seqr := &pickLast{}
	w := New(Config{N: 3, F: 1, Seed: 1, Sequencer: seqr})
	var got []int
	w.SetHandler(1, rt.HandlerFunc(func(src int, m rt.Message) {
		got = append(got, m.(testMsg).Seq)
	}))
	w.Go("d", func(p *Proc) {
		r0 := w.Runtime(0)
		for i := 0; i < 5; i++ {
			r0.Send(1, testMsg{Kd: "m", Seq: i})
		}
		// A competing channel so the sequencer has real choices.
		r2 := w.Runtime(2)
		for i := 0; i < 5; i++ {
			r2.Send(1, testMsg{Kd: "x", Seq: 100 + i})
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var chan0 []int
	for _, s := range got {
		if s < 100 {
			chan0 = append(chan0, s)
		}
	}
	for i, s := range chan0 {
		if s != i {
			t.Fatalf("channel 0→1 reordered: %v", chan0)
		}
	}
	if seqr.steps == 0 {
		t.Fatal("sequencer never consulted")
	}
}

// pickScript replays a fixed choice list, then defaults to 0.
type pickScript struct {
	choices []int
	step    int
}

func (p *pickScript) Next(eligible []EventInfo) int {
	var c int
	if p.step < len(p.choices) {
		c = p.choices[p.step]
	}
	p.step++
	if c >= len(eligible) {
		c = len(eligible) - 1
	}
	return c
}

// TestSequencerDeterministicReplay: the same choice script yields the same
// delivery trace.
func TestSequencerDeterministicReplay(t *testing.T) {
	run := func() []int {
		w := New(Config{N: 3, F: 1, Seed: 1, Sequencer: &pickScript{choices: []int{1, 0, 2, 1, 0}}})
		var got []int
		for i := 0; i < 3; i++ {
			id := i
			w.SetHandler(i, rt.HandlerFunc(func(src int, m rt.Message) {
				got = append(got, id*1000+m.(testMsg).Seq)
			}))
		}
		w.Go("d", func(p *Proc) {
			for i := 0; i < 3; i++ {
				w.Runtime(0).Send(1, testMsg{Kd: "a", Seq: i})
				w.Runtime(1).Send(2, testMsg{Kd: "b", Seq: 10 + i})
				w.Runtime(2).Send(0, testMsg{Kd: "c", Seq: 20 + i})
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != 9 || len(a) != len(b) {
		t.Fatalf("traces: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a, b)
		}
	}
}
