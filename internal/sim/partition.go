package sim

import (
	"fmt"

	"mpsnap/internal/rt"
)

// LinkFate is a LinkAdversary's verdict on one message.
type LinkFate struct {
	// Drop silently discards the message. This violates the reliable-
	// channel model of Section II-A: quorum algorithms stay safe (a lost
	// message is indistinguishable from one delayed forever) but may lose
	// liveness, so drop faults belong in bounded chaos runs, not in
	// model-conforming executions.
	Drop bool
	// Extra delays the message by this many additional ticks beyond the
	// [1, D] model bound, modelling asynchrony spikes. Per-channel FIFO
	// is still enforced.
	Extra rt.Ticks
}

// LinkAdversary intercepts every point-to-point send between distinct
// nodes (after the broadcast Adversary, and before partition buffering),
// deciding the message's fate on the wire. Implementations must be
// deterministic functions of the send sequence for runs to replay.
type LinkAdversary interface {
	OnSend(now rt.Ticks, src, dst int, kind string) LinkFate
}

// LinkAdversaryFunc adapts a function to the LinkAdversary interface.
type LinkAdversaryFunc func(now rt.Ticks, src, dst int, kind string) LinkFate

// OnSend implements LinkAdversary.
func (f LinkAdversaryFunc) OnSend(now rt.Ticks, src, dst int, kind string) LinkFate {
	return f(now, src, dst, kind)
}

// heldMsg is a message parked at a partition cut, waiting for Heal.
type heldMsg struct {
	src, dst int
	msg      rt.Message
}

// Partition splits the nodes into isolated islands: messages between
// nodes of different groups are held at the cut and delivered only after
// Heal (with a fresh delay). Nodes not listed in any group form one
// implicit additional island. Self-delivery is never cut.
//
// Holding (rather than dropping) preserves the reliable-channel model:
// a partition is indistinguishable from a long asynchronous delay, so
// algorithm guarantees that hold under asynchrony must survive any
// partition/heal schedule.
//
// Calling Partition while a partition is active replaces the cut;
// messages already held stay held until Heal.
func (w *World) Partition(groups ...[]int) {
	n := w.cfg.N
	if w.cut == nil {
		w.cut = make([][]bool, n)
		for i := range w.cut {
			w.cut[i] = make([]bool, n)
		}
	}
	island := make([]int, n)
	for i := range island {
		island[i] = -1 // implicit extra group
	}
	for g, nodes := range groups {
		for _, id := range nodes {
			island[id] = g
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			w.cut[s][d] = s != d && island[s] != island[d]
		}
	}
	w.partitioned = true
	if w.tracer != nil {
		w.tracer(TraceEvent{T: w.now, Kind: "partition", Src: -1, Dst: -1})
	}
}

// Heal removes the partition and releases every held message, in send
// order, with fresh delays (FIFO per channel is preserved via the usual
// no-overtake rule).
func (w *World) Heal() {
	if !w.partitioned {
		return
	}
	w.partitioned = false
	for i := range w.cut {
		for j := range w.cut[i] {
			w.cut[i][j] = false
		}
	}
	held := w.held
	w.held = nil
	if w.tracer != nil {
		w.tracer(TraceEvent{T: w.now, Kind: "heal", Src: -1, Dst: -1})
	}
	for _, hm := range held {
		w.dispatch(hm.src, hm.dst, hm.msg, 0)
	}
}

// Partitioned reports whether a partition is currently in effect.
func (w *World) Partitioned() bool { return w.partitioned }

// BlockedWaiter describes one process blocked in WaitUntilThen.
type BlockedWaiter struct {
	// Proc is the blocked process's name.
	Proc string
	// Node is the node the wait is scoped to (-1 for global waits).
	Node int
	// Label is the predicate label passed to WaitUntilThen.
	Label string
	// Since is the virtual time the wait started.
	Since rt.Ticks
}

func (b BlockedWaiter) String() string {
	return fmt.Sprintf("proc %q node=%d wait=%q since t=%d", b.Proc, b.Node, b.Label, b.Since)
}

// Blocked returns the processes currently blocked in WaitUntilThen, in
// registration order. Chaos harnesses use it to diagnose (and unblock)
// stuck operations; it is also what deadlock reports are built from.
func (w *World) Blocked() []BlockedWaiter {
	out := make([]BlockedWaiter, 0, len(w.waiters))
	for _, wt := range w.waiters {
		out = append(out, BlockedWaiter{Proc: wt.p.name, Node: wt.node, Label: wt.label, Since: wt.since})
	}
	return out
}
