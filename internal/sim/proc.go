package sim

import (
	"fmt"

	"mpsnap/internal/rt"
)

// Proc is a simulated sequential thread of control (a "client thread" in
// the paper's model). At most one Proc runs at a time; the scheduler
// resumes it when the predicate it blocks on becomes true.
type Proc struct {
	w    *World
	name string
	// node is the node this process belongs to, or -1 for scenario
	// drivers not tied to a node. It scopes crash failures and the
	// scheduler's change-detection.
	node     int
	resumeCh chan resumeSig
	started  bool
}

type resumeSig struct{ crashed bool }

type parkMsg struct {
	p        *Proc
	done     bool
	panicVal any
	stack    []byte
}

// Go spawns a process not bound to any node (e.g. a scenario driver).
func (w *World) Go(name string, fn func(p *Proc)) *Proc {
	return w.GoNode(name, -1, fn)
}

// GoNode spawns a process bound to a node: if that node crashes, any wait
// the process is blocked on fails with rt.ErrCrashed.
func (w *World) GoNode(name string, node int, fn func(p *Proc)) *Proc {
	p := &Proc{w: w, name: name, node: node, resumeCh: make(chan resumeSig)}
	w.procs = append(w.procs, p)
	w.newProcs = append(w.newProcs, p)
	go func() {
		<-p.resumeCh // wait for the scheduler's first handover
		var pv any
		var stack []byte
		func() {
			defer func() {
				if r := recover(); r != nil {
					pv = r
					stack = []byte(debugStack())
				}
			}()
			fn(p)
		}()
		w.parkCh <- parkMsg{p: p, done: true, panicVal: pv, stack: stack}
	}()
	return p
}

// runProc hands control to p until it parks again or finishes.
func (w *World) runProc(p *Proc, crashed bool) {
	w.current = p
	p.resumeCh <- resumeSig{crashed: crashed}
	msg := <-w.parkCh
	w.current = nil
	// The process may have mutated its node's state; let blocked
	// predicates re-evaluate.
	if p.node >= 0 {
		w.nodes[p.node].version++
	} else {
		for _, ns := range w.nodes {
			ns.version++
		}
	}
	if msg.done && msg.panicVal != nil {
		panic(fmt.Sprintf("sim: proc %q panicked: %v\n%s", p.name, msg.panicVal, msg.stack))
	}
}

type waiter struct {
	p           *Proc
	node        int
	label       string
	pred        func() bool
	since       rt.Ticks
	seenVersion int64
	seenNow     rt.Ticks
}

// waitUntilThen implements the blocking primitive. It must be called from
// the goroutine of the currently running Proc.
func (p *Proc) waitUntilThen(node int, label string, pred func() bool, then func()) error {
	w := p.w
	if w.current != p {
		panic("sim: wait called from a goroutine that is not the running proc")
	}
	if node >= 0 && w.nodes[node].crashed {
		return rt.ErrCrashed
	}
	if pred() {
		then()
		return nil
	}
	wt := &waiter{p: p, node: node, label: label, pred: pred, since: w.now, seenVersion: -1}
	w.waiters = append(w.waiters, wt)
	w.parkCh <- parkMsg{p: p}
	sig := <-p.resumeCh
	if sig.crashed {
		return rt.ErrCrashed
	}
	then()
	return nil
}

// WaitUntil blocks p until pred() holds, respecting p's node crash scope.
// The predicate is re-evaluated when the node's state or the clock
// changes; for conditions spanning OTHER nodes' state, use
// WaitUntilGlobal.
func (p *Proc) WaitUntil(label string, pred func() bool) error {
	return p.waitUntilThen(p.node, label, pred, func() {})
}

// WaitUntilGlobal blocks p until pred() holds, re-evaluating after every
// scheduler step regardless of which node changed. Use it in scenario
// drivers whose conditions span multiple nodes. It is not crash-scoped.
func (p *Proc) WaitUntilGlobal(label string, pred func() bool) error {
	return p.waitUntilThen(-1, label, pred, func() {})
}

// Sleep suspends p for d ticks of virtual time.
func (p *Proc) Sleep(d rt.Ticks) error {
	target := p.w.now + d
	// Ensure the clock reaches the target even with an empty queue.
	p.w.schedule(target, func() {})
	return p.waitUntilThen(p.node, fmt.Sprintf("sleep(%d)", d), func() bool { return p.w.now >= target }, func() {})
}

// Now returns the current virtual time.
func (p *Proc) Now() rt.Ticks { return p.w.now }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }
