package sim

import (
	"testing"

	"mpsnap/internal/rt"
)

func TestTracerObservesSendsDeliveriesCrashes(t *testing.T) {
	w := New(Config{N: 3, F: 1, Seed: 1})
	var events []TraceEvent
	w.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	w.SetHandler(1, rt.HandlerFunc(func(src int, m rt.Message) {}))
	w.CrashAt(2, 100)
	w.Go("d", func(p *Proc) {
		w.Runtime(0).Send(1, testMsg{Kd: "hello", Seq: 1})
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var sends, delivers, crashes int
	for _, ev := range events {
		switch ev.Kind {
		case "send":
			sends++
			if ev.Src != 0 || ev.Dst != 1 || ev.Msg != "hello" {
				t.Fatalf("send event: %+v", ev)
			}
		case "deliver":
			delivers++
			if ev.T <= 0 {
				t.Fatalf("delivery with no delay: %+v", ev)
			}
		case "crash":
			crashes++
			if ev.Src != 2 {
				t.Fatalf("crash event: %+v", ev)
			}
		}
	}
	if sends != 1 || delivers != 1 || crashes != 1 {
		t.Fatalf("sends=%d delivers=%d crashes=%d", sends, delivers, crashes)
	}
}

func TestTracerSilentByDefault(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 1})
	w.Go("d", func(p *Proc) {
		w.Runtime(0).Send(1, testMsg{Kd: "x", Seq: 0})
	})
	if err := w.Run(); err != nil {
		t.Fatal(err) // must not panic with no tracer installed
	}
}
