package sim

import (
	"errors"
	"testing"

	"mpsnap/internal/rt"
)

type pingMsg struct{ Seq int }

func (pingMsg) Kind() string { return "ping" }

// collect records delivered sequence numbers per node.
type collect struct{ got []int }

func (c *collect) HandleMessage(src int, msg rt.Message) {
	c.got = append(c.got, msg.(pingMsg).Seq)
}

// TestPartitionHoldsUntilHeal: a message sent across the cut arrives only
// after Heal; a message inside an island is unaffected.
func TestPartitionHoldsUntilHeal(t *testing.T) {
	w := New(Config{N: 3, F: 1, Seed: 1})
	sinks := make([]*collect, 3)
	for i := range sinks {
		sinks[i] = &collect{}
		w.SetHandler(i, sinks[i])
	}
	healAt := rt.Ticks(50_000)
	w.Partition([]int{0}, []int{1, 2})
	w.After(healAt, func() { w.Heal() })
	var crossDeliv, sameDeliv rt.Ticks = -1, -1
	w.SetTracer(func(ev TraceEvent) {
		if ev.Kind == "deliver" && ev.Src == 0 && ev.Dst == 1 {
			crossDeliv = ev.T
		}
		if ev.Kind == "deliver" && ev.Src == 1 && ev.Dst == 2 {
			sameDeliv = ev.T
		}
	})
	w.Go("driver", func(p *Proc) {
		w.Runtime(0).Send(1, pingMsg{Seq: 1}) // crosses the cut
		w.Runtime(1).Send(2, pingMsg{Seq: 2}) // same island
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sinks[1].got) != 1 || len(sinks[2].got) != 1 {
		t.Fatalf("deliveries: node1=%v node2=%v", sinks[1].got, sinks[2].got)
	}
	if crossDeliv < healAt {
		t.Fatalf("cross-cut message delivered at t=%d, before heal at t=%d", crossDeliv, healAt)
	}
	if sameDeliv >= healAt {
		t.Fatalf("same-island message delayed to t=%d by an unrelated cut", sameDeliv)
	}
	if st := w.Stats(); st.MsgsHeld != 1 {
		t.Fatalf("MsgsHeld = %d, want 1", st.MsgsHeld)
	}
}

// TestPartitionPreservesFIFO: messages held at the cut are released in
// send order and never overtake each other, interleaved with pre-cut and
// post-heal traffic on the same channel.
func TestPartitionPreservesFIFO(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 3})
	sink := &collect{}
	w.SetHandler(1, sink)
	w.SetHandler(0, rt.HandlerFunc(func(int, rt.Message) {}))
	w.Go("driver", func(p *Proc) {
		w.Runtime(0).Send(1, pingMsg{Seq: 1}) // pre-cut, in flight
		w.Partition([]int{0}, []int{1})
		for s := 2; s <= 4; s++ {
			w.Runtime(0).Send(1, pingMsg{Seq: s}) // held
		}
		if err := p.Sleep(10_000); err != nil {
			t.Error(err)
		}
		w.Heal()
		w.Runtime(0).Send(1, pingMsg{Seq: 5}) // post-heal
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	if len(sink.got) != len(want) {
		t.Fatalf("got %v, want %v", sink.got, want)
	}
	for i, s := range want {
		if sink.got[i] != s {
			t.Fatalf("FIFO violated: got %v, want %v", sink.got, want)
		}
	}
}

// TestLinkAdversaryDrop: dropped messages never arrive and are counted.
func TestLinkAdversaryDrop(t *testing.T) {
	dropAll := LinkAdversaryFunc(func(now rt.Ticks, src, dst int, kind string) LinkFate {
		return LinkFate{Drop: src == 0 && dst == 1}
	})
	w := New(Config{N: 2, F: 0, Seed: 4, Link: dropAll})
	sink := &collect{}
	w.SetHandler(1, sink)
	w.Go("driver", func(p *Proc) {
		w.Runtime(0).Send(1, pingMsg{Seq: 1})
		w.Runtime(1).Send(0, pingMsg{Seq: 2})
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.got) != 0 {
		t.Fatalf("dropped message was delivered: %v", sink.got)
	}
	if st := w.Stats(); st.MsgsDrop != 1 {
		t.Fatalf("MsgsDrop = %d, want 1", st.MsgsDrop)
	}
}

// TestLinkAdversaryExtraDelay: Extra stretches delivery beyond the model
// bound D while keeping FIFO.
func TestLinkAdversaryExtraDelay(t *testing.T) {
	const extra = 5 * rt.TicksPerD
	spiky := LinkAdversaryFunc(func(now rt.Ticks, src, dst int, kind string) LinkFate {
		return LinkFate{Extra: extra}
	})
	w := New(Config{N: 2, F: 0, Seed: 5, Link: spiky})
	sink := &collect{}
	w.SetHandler(1, sink)
	var deliv rt.Ticks = -1
	w.SetTracer(func(ev TraceEvent) {
		if ev.Kind == "deliver" && ev.Dst == 1 {
			deliv = ev.T
		}
	})
	w.Go("driver", func(p *Proc) {
		w.Runtime(0).Send(1, pingMsg{Seq: 1})
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if deliv <= extra {
		t.Fatalf("delivery at t=%d, want after the %d-tick spike", deliv, extra)
	}
}

// TestUnhealedPartitionIsDiagnosable: a client blocked behind a cut that
// never heals surfaces as a DeadlockError listing the blocked predicate.
func TestUnhealedPartitionIsDiagnosable(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 6})
	got := 0
	w.SetHandler(1, rt.HandlerFunc(func(int, rt.Message) { got++ }))
	w.Partition([]int{0}, []int{1})
	w.GoNode("stuck-client", 1, func(p *Proc) {
		w.Runtime(0).Send(1, pingMsg{Seq: 1})
		_ = rt.WaitUntil(w.Runtime(1), "await-ping", func() bool { return got > 0 })
	})
	err := w.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Waiters) != 1 || de.Waiters[0].Label != "await-ping" || de.Waiters[0].Node != 1 {
		t.Fatalf("waiters: %+v", de.Waiters)
	}
}

// TestHealIsIdempotent: Heal without a partition is a no-op.
func TestHealIsIdempotent(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 7})
	w.SetHandler(1, &collect{})
	w.Heal()
	w.Partition([]int{0}, []int{1})
	w.Heal()
	w.Heal()
	if w.Partitioned() {
		t.Fatal("still partitioned after Heal")
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
