// Package sim is a deterministic discrete-event simulator of the paper's
// asynchronous message-passing system (Section II-A).
//
// Time is virtual: every message between distinct nodes is delivered within
// D ticks (rt.TicksPerD by default), with the exact delay chosen by a
// pluggable DelayModel and the failure pattern chosen by an Adversary.
// Channels are reliable and FIFO; once a send completes, delivery happens
// even if the sender crashes afterwards. Crashes may truncate a broadcast
// partway through (a prefix of destinations receives the message), which is
// what makes the paper's failure chains (Definition 11) expressible.
//
// Node message handlers run atomically on the scheduler goroutine. Client
// operations run in "processes" (goroutines) that the scheduler resumes one
// at a time, so an entire simulation is single-threaded and fully
// deterministic for a given seed, delay model, and adversary.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// CopyThroughEnv is the environment variable that force-enables
// Config.CopyThrough for every World (CI runs the whole test suite with
// it set, so every registered message of every scenario crosses the
// codec).
const CopyThroughEnv = "MPSNAP_WIRE_COPYTHROUGH"

// Config parameterizes a World.
type Config struct {
	// N is the number of nodes; must be >= 1.
	N int
	// F is the resilience bound reported to algorithms via rt.Runtime.F.
	F int
	// D is the maximum message delay in ticks. 0 means rt.TicksPerD.
	D rt.Ticks
	// Delay chooses per-message delays. nil means Uniform{1, D}.
	Delay DelayModel
	// SelfDelay is the delivery delay for messages a node sends to
	// itself. 0 means 1 tick.
	SelfDelay rt.Ticks
	// Adversary intercepts broadcasts to model crash-during-send and
	// other failure patterns. nil means no interference.
	Adversary Adversary
	// Link intercepts point-to-point sends between distinct nodes to
	// model message loss and delay spikes (see LinkAdversary). nil means
	// a fault-free network.
	Link LinkAdversary
	// CopyThrough round-trips every sent message through the
	// internal/wire codec (encode, decode, verify the re-encode is
	// byte-identical), so simulator runs exercise exactly the encodings a
	// real deployment would and receivers share no memory with senders.
	// Messages of unregistered types (test-local scaffolding) pass
	// through unchanged; a codec failure on a registered type panics —
	// it is a registration or canonicality bug, never an input error.
	// The MPSNAP_WIRE_COPYTHROUGH environment variable force-enables it.
	CopyThrough bool
	// Wire intercepts messages between distinct nodes at the codec layer,
	// after the link adversary: it may rewrite the message (a corrupt
	// frame that still decodes) or drop it (a corrupt frame the receiver
	// rejects and treats as a dead connection). nil means no wire faults.
	Wire WireFault
	// Observer, if set, receives a rt.MsgEvent for every message
	// lifecycle step (send, deliver, drop, corrupt). It is invoked
	// synchronously on the scheduler, so it must not block or mutate
	// simulation state; internal/obs provides the standard
	// implementations. Held (partitioned) messages emit their send event
	// when the partition heals and they are actually dispatched.
	Observer rt.Observer
	// Seed seeds the simulation's private RNG (used by random delay
	// models). The default 0 is a valid seed.
	Seed int64
	// MaxEvents aborts the run (with an error) after this many scheduler
	// steps, as a livelock backstop. 0 means 100,000,000.
	MaxEvents int64
	// Sequencer, if set, replaces time-ordered delivery with explicit
	// schedule control: at every step the sequencer picks which eligible
	// event fires next (per-channel FIFO is still enforced — only the
	// oldest undelivered message of each channel is eligible). Virtual
	// time degenerates to a step counter. Used by the schedule explorer
	// (internal/explore); scenarios must not rely on Sleep durations.
	Sequencer Sequencer
}

// WireFault models faults at the wire (codec) layer — the simulator
// counterpart of flipped bits on a TCP stream. OnWire sees every message
// between distinct nodes; it returns drop=true to discard the message
// (modelling a frame the receiver could not decode, i.e. a closed
// connection), a non-nil replacement to deliver a corrupted rewrite, or
// (nil, false) to deliver the message unchanged.
type WireFault interface {
	OnWire(now rt.Ticks, src, dst int, msg rt.Message) (replacement rt.Message, drop bool)
}

// EventInfo describes one eligible event for a Sequencer.
type EventInfo struct {
	// Src/Dst identify a message event's channel; Src is -1 for
	// non-message events (timers, scheduled crashes).
	Src, Dst int
	// Kind is the message kind (empty for non-message events).
	Kind string
}

// Sequencer chooses which eligible event fires next. Implementations must
// be deterministic functions of the choice history to support replay.
type Sequencer interface {
	// Next returns an index into eligible (len ≥ 1).
	Next(eligible []EventInfo) int
}

// World is one simulated execution.
type World struct {
	cfg   Config
	now   rt.Ticks
	seq   int64
	pq    eventHeap
	rng   *rand.Rand
	nodes []*nodeState
	// lastDeliv[src][dst] is the latest scheduled delivery time on the
	// (src,dst) channel; later sends may not be delivered earlier (FIFO).
	lastDeliv [][]rt.Ticks

	// Partition state: cut[src][dst] marks severed channels; held parks
	// cross-cut messages (in send order) until Heal.
	partitioned bool
	cut         [][]bool
	held        []heldMsg

	procs    []*Proc
	newProcs []*Proc
	waiters  []*waiter
	current  *Proc
	parkCh   chan parkMsg

	steps       int64
	msgsTotal   int64
	msgsDrop    int64
	msgsHeld    int64
	msgsCorrupt int64
	msgsByKind  map[string]int64

	tracer func(TraceEvent)

	ran bool
}

// TraceEvent is one observable simulator event (for tooling and debug
// output). Kind is "send", "deliver", "crash", "restart", "drop" (link
// adversary discarded the message), "corrupt" (wire fault rewrote or
// killed the message), "hold" (parked at a partition cut), "partition",
// or "heal".
type TraceEvent struct {
	T    rt.Ticks
	Kind string
	Src  int
	Dst  int
	Msg  string // message kind; empty for crashes
}

// SetTracer installs an event observer. It is invoked synchronously on
// the scheduler, so it must not block or mutate simulation state.
func (w *World) SetTracer(fn func(TraceEvent)) { w.tracer = fn }

type nodeState struct {
	handler   rt.Handler
	crashed   bool
	version   int64 // bumped whenever node state may have changed
	sent      int64
	delivered int64
}

type event struct {
	t   rt.Ticks
	seq int64
	fn  func()
	// Metadata for the sequencer (schedule exploration): message events
	// carry src/dst/kind; other events have src = -1.
	src, dst int
	kind     string
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peekTime() rt.Ticks { return h[0].t }

// New creates a fresh simulated world.
func New(cfg Config) *World {
	if cfg.N < 1 {
		panic("sim: Config.N must be >= 1")
	}
	if cfg.D == 0 {
		cfg.D = rt.TicksPerD
	}
	if cfg.Delay == nil {
		cfg.Delay = Uniform{Min: 1, Max: cfg.D}
	}
	if cfg.SelfDelay == 0 {
		cfg.SelfDelay = 1
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 100_000_000
	}
	if os.Getenv(CopyThroughEnv) != "" {
		cfg.CopyThrough = true
	}
	w := &World{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		parkCh:     make(chan parkMsg),
		msgsByKind: make(map[string]int64),
	}
	w.nodes = make([]*nodeState, cfg.N)
	for i := range w.nodes {
		w.nodes[i] = &nodeState{}
	}
	w.lastDeliv = make([][]rt.Ticks, cfg.N)
	for i := range w.lastDeliv {
		w.lastDeliv[i] = make([]rt.Ticks, cfg.N)
	}
	return w
}

// Now returns the current virtual time.
func (w *World) Now() rt.Ticks { return w.now }

// D returns the configured maximum message delay.
func (w *World) D() rt.Ticks { return w.cfg.D }

// N returns the number of nodes.
func (w *World) N() int { return w.cfg.N }

// F returns the resilience bound.
func (w *World) F() int { return w.cfg.F }

// SetHandler installs the message handler (server thread) of node id.
func (w *World) SetHandler(id int, h rt.Handler) { w.nodes[id].handler = h }

// Runtime returns the rt.Runtime for node id.
func (w *World) Runtime(id int) rt.Runtime { return &nodeRuntime{w: w, id: id} }

// Crashed reports whether node id has crashed.
func (w *World) Crashed(id int) bool { return w.nodes[id].crashed }

// CrashAt schedules node id to crash at time t (before any delivery at t).
func (w *World) CrashAt(id int, t rt.Ticks) {
	w.schedule(t, func() { w.crash(id) })
}

// Crash crashes node id immediately. In-flight messages it already sent are
// still delivered; it stops sending and handling, and any blocked operation
// on it fails with rt.ErrCrashed.
func (w *World) Crash(id int) { w.crash(id) }

func (w *World) crash(id int) {
	ns := w.nodes[id]
	if ns.crashed {
		return
	}
	ns.crashed = true
	ns.version++
	if w.tracer != nil {
		w.tracer(TraceEvent{T: w.now, Kind: "crash", Src: id, Dst: -1})
	}
}

// Restart brings a crashed node back: it resumes receiving, sending, and
// handling messages. The caller installs the recovered incarnation's
// handler (SetHandler) before the restart and spawns a fresh client
// process (GoNode) after it — processes of the old incarnation died with
// rt.ErrCrashed at crash time and stay dead. Channel state survives the
// model's way: messages already in flight to the node when it crashed are
// delivered to the NEW incarnation if their delivery time falls after the
// restart (the node re-binds the same identity), while deliveries that
// fired during the downtime are lost forever.
func (w *World) Restart(id int) {
	ns := w.nodes[id]
	if !ns.crashed {
		return
	}
	ns.crashed = false
	ns.version++
	if w.tracer != nil {
		w.tracer(TraceEvent{T: w.now, Kind: "restart", Src: id, Dst: -1})
	}
}

// RestartAt schedules node id to restart at time t.
func (w *World) RestartAt(id int, t rt.Ticks) {
	w.schedule(t, func() { w.Restart(id) })
}

// CrashedCount returns the number of crashed nodes.
func (w *World) CrashedCount() int {
	k := 0
	for _, ns := range w.nodes {
		if ns.crashed {
			k++
		}
	}
	return k
}

// schedule enqueues fn to run at time t (>= now).
func (w *World) schedule(t rt.Ticks, fn func()) {
	if t < w.now {
		t = w.now
	}
	w.seq++
	heap.Push(&w.pq, event{t: t, seq: w.seq, fn: fn, src: -1, dst: -1})
}

// scheduleMsg enqueues a message delivery with sequencer metadata.
func (w *World) scheduleMsg(t rt.Ticks, src, dst int, kind string, fn func()) {
	if t < w.now {
		t = w.now
	}
	w.seq++
	heap.Push(&w.pq, event{t: t, seq: w.seq, fn: fn, src: src, dst: dst, kind: kind})
}

// After schedules fn to run d ticks from now. It is the hook scenario code
// uses to inject actions (crashes, probes) at chosen times.
func (w *World) After(d rt.Ticks, fn func()) { w.schedule(w.now+d, fn) }

// send transmits one message on the (src,dst) channel, consulting the
// link adversary, the wire-fault hook, and the partition cut.
func (w *World) send(src, dst int, msg rt.Message) {
	if w.nodes[src].crashed {
		return
	}
	if w.cfg.CopyThrough {
		// Per-destination round trip: each receiver gets the message a
		// codec would hand it, sharing no memory with the sender or with
		// other receivers of the same broadcast. Messages a codec could
		// not encode (test-local types, envelopes nesting them) pass
		// through unchanged.
		if wire.Marshalable(msg) {
			m, err := wire.Roundtrip(msg)
			if err != nil {
				panic(fmt.Sprintf("sim: copy-through %d->%d: %v", src, dst, err))
			}
			msg = m
		}
	}
	w.nodes[src].sent++
	w.msgsTotal++
	w.msgsByKind[msg.Kind()]++
	var extra rt.Ticks
	if src != dst {
		if w.cfg.Link != nil {
			fate := w.cfg.Link.OnSend(w.now, src, dst, msg.Kind())
			if fate.Drop {
				w.msgsDrop++
				if w.tracer != nil {
					w.tracer(TraceEvent{T: w.now, Kind: "drop", Src: src, Dst: dst, Msg: msg.Kind()})
				}
				w.observeMsg(rt.MsgDrop, src, dst, msg)
				return
			}
			extra = fate.Extra
		}
		if w.cfg.Wire != nil {
			m, drop := w.cfg.Wire.OnWire(w.now, src, dst, msg)
			if drop {
				w.msgsCorrupt++
				w.msgsDrop++
				if w.tracer != nil {
					w.tracer(TraceEvent{T: w.now, Kind: "corrupt", Src: src, Dst: dst, Msg: msg.Kind()})
				}
				w.observeMsg(rt.MsgCorrupt, src, dst, msg)
				return
			}
			if m != nil {
				w.msgsCorrupt++
				if w.tracer != nil {
					w.tracer(TraceEvent{T: w.now, Kind: "corrupt", Src: src, Dst: dst, Msg: msg.Kind()})
				}
				w.observeMsg(rt.MsgCorrupt, src, dst, msg)
				msg = m
			}
		}
		if w.partitioned && w.cut[src][dst] {
			w.msgsHeld++
			w.held = append(w.held, heldMsg{src: src, dst: dst, msg: msg})
			if w.tracer != nil {
				w.tracer(TraceEvent{T: w.now, Kind: "hold", Src: src, Dst: dst, Msg: msg.Kind()})
			}
			return
		}
	}
	if w.tracer != nil {
		w.tracer(TraceEvent{T: w.now, Kind: "send", Src: src, Dst: dst, Msg: msg.Kind()})
	}
	w.observeMsg(rt.MsgSend, src, dst, msg)
	w.dispatch(src, dst, msg, extra)
}

// observeMsg forwards a message lifecycle event to the configured
// Observer, if any. The encoded size is computed only when someone is
// listening; unmarshalable test-local messages report 0 bytes.
func (w *World) observeMsg(event string, src, dst int, msg rt.Message) {
	if w.cfg.Observer != nil {
		w.cfg.Observer.OnMsg(rt.MsgEvent{
			T: w.now, Event: event, Src: src, Dst: dst,
			Kind: msg.Kind(), Bytes: wire.EncodedSize(msg),
		})
	}
}

// dispatch schedules the actual delivery: base delay in [1, D] from the
// delay model, plus any adversarial extra, never overtaking earlier sends
// on the same channel (FIFO).
func (w *World) dispatch(src, dst int, msg rt.Message, extra rt.Ticks) {
	var d rt.Ticks
	if src == dst {
		d = w.cfg.SelfDelay
	} else {
		d = w.cfg.Delay.Delay(src, dst, msg.Kind(), w.now, w.rng)
	}
	if d < 1 {
		d = 1
	}
	if d > w.cfg.D {
		d = w.cfg.D
	}
	t := w.now + d + extra
	if t < w.lastDeliv[src][dst] {
		t = w.lastDeliv[src][dst] // FIFO: never overtake an earlier send
	}
	w.lastDeliv[src][dst] = t
	w.scheduleMsg(t, src, dst, msg.Kind(), func() { w.deliver(src, dst, msg) })
}

func (w *World) deliver(src, dst int, msg rt.Message) {
	ns := w.nodes[dst]
	if ns.crashed {
		return
	}
	ns.delivered++
	ns.version++
	if w.tracer != nil {
		w.tracer(TraceEvent{T: w.now, Kind: "deliver", Src: src, Dst: dst, Msg: msg.Kind()})
	}
	w.observeMsg(rt.MsgDeliver, src, dst, msg)
	if ns.handler != nil {
		ns.handler.HandleMessage(src, msg)
	}
}

// broadcast sends msg from src to all nodes (including src), possibly
// truncated by the adversary, which may also crash src afterwards.
func (w *World) broadcast(src int, msg rt.Message) {
	if w.nodes[src].crashed {
		return
	}
	dsts := make([]int, w.cfg.N)
	for i := range dsts {
		dsts[i] = i
	}
	crashAfter := false
	if w.cfg.Adversary != nil {
		dsts, crashAfter = w.cfg.Adversary.OnBroadcast(w.now, src, msg, dsts)
	}
	for _, dst := range dsts {
		w.send(src, dst, msg)
	}
	if crashAfter {
		w.crash(src)
	}
}

// Stats is a snapshot of simulation counters.
type Stats struct {
	Now         rt.Ticks
	Events      int64
	MsgsTotal   int64
	MsgsDrop    int64 // discarded by the link adversary or a wire fault
	MsgsHeld    int64 // parked at a partition cut (delivered on heal)
	MsgsCorrupt int64 // rewritten or killed by the wire-fault hook
	MsgsByKind  map[string]int64
	SentByNode  []int64
}

// Stats returns current counters. The returned maps/slices are copies.
func (w *World) Stats() Stats {
	s := Stats{
		Now:         w.now,
		Events:      w.steps,
		MsgsTotal:   w.msgsTotal,
		MsgsDrop:    w.msgsDrop,
		MsgsHeld:    w.msgsHeld,
		MsgsCorrupt: w.msgsCorrupt,
		MsgsByKind:  make(map[string]int64, len(w.msgsByKind)),
		SentByNode:  make([]int64, w.cfg.N),
	}
	for k, v := range w.msgsByKind {
		s.MsgsByKind[k] = v
	}
	for i, ns := range w.nodes {
		s.SentByNode[i] = ns.sent
	}
	return s
}

// SentBy returns the number of messages node id has sent so far. Useful for
// asserting communication-free operations (e.g. SSO scans).
func (w *World) SentBy(id int) int64 { return w.nodes[id].sent }

// DeadlockError is returned by Run when no event can make progress while
// processes are still blocked. Waiters identifies every blocked
// WaitUntilThen predicate (process name, node id, wait label, block time)
// so hangs — e.g. a chaos run that dropped a quorum's worth of messages —
// are diagnosable rather than a bare failure.
type DeadlockError struct {
	Now     rt.Ticks
	Waiters []BlockedWaiter
}

// Blocked returns the formatted waiter descriptions (sorted).
func (e *DeadlockError) Blocked() []string {
	out := make([]string, len(e.Waiters))
	for i, bw := range e.Waiters {
		out[i] = bw.String()
	}
	sort.Strings(out)
	return out
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%d with %d blocked waiter(s):\n  %s",
		e.Now, len(e.Waiters), strings.Join(e.Blocked(), "\n  "))
}

// Run executes the simulation until every process has finished and the
// event queue is empty. It returns a *DeadlockError if processes remain
// blocked with no pending events, or an error if Config.MaxEvents is hit.
// Run must be called exactly once per World.
func (w *World) Run() error {
	if w.ran {
		panic("sim: World.Run called twice")
	}
	w.ran = true
	for {
		w.steps++
		if w.steps > w.cfg.MaxEvents {
			blocked := ""
			if bws := w.Blocked(); len(bws) > 0 {
				lines := make([]string, len(bws))
				for i, bw := range bws {
					lines[i] = bw.String()
				}
				sort.Strings(lines)
				blocked = fmt.Sprintf("; %d blocked waiter(s):\n  %s", len(lines), strings.Join(lines, "\n  "))
			}
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%d (livelock?)%s", w.cfg.MaxEvents, w.now, blocked)
		}
		// 1. Start any newly spawned processes.
		if len(w.newProcs) > 0 {
			p := w.newProcs[0]
			w.newProcs = w.newProcs[1:]
			w.runProc(p, false)
			continue
		}
		// 2. Resume a blocked process whose predicate now holds (or
		//    whose node crashed).
		if i := w.findFireable(); i >= 0 {
			wt := w.waiters[i]
			w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
			w.runProc(wt.p, wt.node >= 0 && w.nodes[wt.node].crashed)
			continue
		}
		// 3. Advance virtual time to the next event (or let the
		//    sequencer pick any eligible one, for schedule exploration).
		if w.pq.Len() > 0 {
			var ev event
			if w.cfg.Sequencer != nil {
				ev = w.pickSequenced()
			} else {
				ev = heap.Pop(&w.pq).(event)
			}
			if ev.t > w.now {
				w.now = ev.t
			}
			ev.fn()
			continue
		}
		// 4. Quiescent.
		if len(w.waiters) > 0 {
			return &DeadlockError{Now: w.now, Waiters: w.Blocked()}
		}
		return nil
	}
}

// pickSequenced builds the eligible event set — every non-message event,
// plus the oldest undelivered message per channel (FIFO) — and lets the
// sequencer choose. Eligible events are presented in a deterministic
// (send-sequence) order so choices replay exactly.
func (w *World) pickSequenced() event {
	type cand struct {
		heapIdx int
		seq     int64
		info    EventInfo
	}
	var cands []cand
	chanBest := make(map[[2]int]int)
	for i, ev := range w.pq {
		if ev.src < 0 {
			cands = append(cands, cand{heapIdx: i, seq: ev.seq, info: EventInfo{Src: -1, Dst: -1}})
			continue
		}
		key := [2]int{ev.src, ev.dst}
		info := EventInfo{Src: ev.src, Dst: ev.dst, Kind: ev.kind}
		if j, ok := chanBest[key]; ok {
			if ev.seq < cands[j].seq {
				cands[j] = cand{heapIdx: i, seq: ev.seq, info: info}
			}
			continue
		}
		chanBest[key] = len(cands)
		cands = append(cands, cand{heapIdx: i, seq: ev.seq, info: info})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	infos := make([]EventInfo, len(cands))
	for i, c := range cands {
		infos[i] = c.info
	}
	choice := w.cfg.Sequencer.Next(infos)
	if choice < 0 || choice >= len(cands) {
		panic(fmt.Sprintf("sim: sequencer chose %d of %d eligible events", choice, len(cands)))
	}
	ev := w.pq[cands[choice].heapIdx]
	heap.Remove(&w.pq, cands[choice].heapIdx)
	return ev
}

func (w *World) findFireable() int {
	for i, wt := range w.waiters {
		if wt.node >= 0 {
			ns := w.nodes[wt.node]
			if ns.crashed {
				return i
			}
			if ns.version == wt.seenVersion && w.now == wt.seenNow {
				continue // nothing changed since last evaluation
			}
			wt.seenVersion = ns.version
			wt.seenNow = w.now
		}
		if wt.pred() {
			return i
		}
	}
	return -1
}
