package sim

import (
	"math/rand"

	"mpsnap/internal/rt"
)

// DelayModel chooses the delivery delay of each message. Returned delays
// are clamped by the simulator to [1, D]. The model is consulted only for
// messages between distinct nodes (self-delivery uses Config.SelfDelay).
type DelayModel interface {
	Delay(src, dst int, kind string, now rt.Ticks, r *rand.Rand) rt.Ticks
}

// Constant delivers every message after exactly Ticks. Constant{D} is the
// paper's extreme case "every message suffers delay D".
type Constant struct{ Ticks rt.Ticks }

// Delay implements DelayModel.
func (c Constant) Delay(src, dst int, kind string, now rt.Ticks, r *rand.Rand) rt.Ticks {
	return c.Ticks
}

// Uniform draws delays uniformly from [Min, Max].
type Uniform struct{ Min, Max rt.Ticks }

// Delay implements DelayModel.
func (u Uniform) Delay(src, dst int, kind string, now rt.Ticks, r *rand.Rand) rt.Ticks {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rt.Ticks(r.Int63n(int64(u.Max-u.Min+1)))
}

// DelayFunc adapts a function to the DelayModel interface, for scripted
// scenarios (e.g. the Figure 2 execution).
type DelayFunc func(src, dst int, kind string, now rt.Ticks, r *rand.Rand) rt.Ticks

// Delay implements DelayModel.
func (f DelayFunc) Delay(src, dst int, kind string, now rt.Ticks, r *rand.Rand) rt.Ticks {
	return f(src, dst, kind, now, r)
}

// SlowLinks delays messages on the links in Slow by SlowDelay and all other
// messages by FastDelay. Keys are [2]int{src, dst}.
type SlowLinks struct {
	Slow      map[[2]int]bool
	SlowDelay rt.Ticks
	FastDelay rt.Ticks
}

// Delay implements DelayModel.
func (s SlowLinks) Delay(src, dst int, kind string, now rt.Ticks, r *rand.Rand) rt.Ticks {
	if s.Slow[[2]int{src, dst}] {
		return s.SlowDelay
	}
	return s.FastDelay
}
