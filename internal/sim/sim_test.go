package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mpsnap/internal/rt"
)

// testMsg is a minimal message carrying a sequence number and kind.
type testMsg struct {
	Kd  string
	Seq int
}

func (m testMsg) Kind() string { return m.Kd }

// recorder collects delivered messages per node.
type recorder struct {
	got []struct {
		src int
		msg testMsg
		at  rt.Ticks
	}
	w *World
}

func (r *recorder) HandleMessage(src int, msg rt.Message) {
	r.got = append(r.got, struct {
		src int
		msg testMsg
		at  rt.Ticks
	}{src, msg.(testMsg), r.w.Now()})
}

func TestFIFOAndDelayBound(t *testing.T) {
	const n = 4
	const msgs = 200
	w := New(Config{N: n, F: 1, Seed: 42})
	recs := make([]*recorder, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{w: w}
		w.SetHandler(i, recs[i])
	}
	sendTimes := make(map[int]rt.Ticks)
	w.Go("driver", func(p *Proc) {
		r0 := w.Runtime(0)
		for i := 0; i < msgs; i++ {
			sendTimes[i] = w.Now()
			r0.Send(1, testMsg{Kd: "m", Seq: i})
			if i%5 == 0 {
				if err := p.Sleep(rt.Ticks(37 * (i + 1) % 500)); err != nil {
					t.Errorf("sleep: %v", err)
				}
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := recs[1].got
	if len(got) != msgs {
		t.Fatalf("node 1 received %d messages, want %d", len(got), msgs)
	}
	for i, g := range got {
		if g.msg.Seq != i {
			t.Fatalf("FIFO violated: position %d carries seq %d", i, g.msg.Seq)
		}
		d := g.at - sendTimes[g.msg.Seq]
		if d < 1 || d > w.D() {
			t.Fatalf("delay %d out of bounds (0, %d] for msg %d", d, w.D(), g.msg.Seq)
		}
	}
}

// TestFIFOProperty: for random delay seeds and interleaved sends from two
// sources, per-channel FIFO order always holds.
func TestFIFOProperty(t *testing.T) {
	prop := func(seed int64, counts uint8) bool {
		k := int(counts%50) + 2
		w := New(Config{N: 3, F: 1, Seed: seed})
		rec := &recorder{w: w}
		w.SetHandler(2, rec)
		w.Go("d", func(p *Proc) {
			for i := 0; i < k; i++ {
				w.Runtime(0).Send(2, testMsg{Kd: "a", Seq: i})
				w.Runtime(1).Send(2, testMsg{Kd: "b", Seq: i})
				if i%3 == 0 {
					_ = p.Sleep(rt.Ticks(i * 11))
				}
			}
		})
		if err := w.Run(); err != nil {
			return false
		}
		nextA, nextB := 0, 0
		for _, g := range rec.got {
			switch g.src {
			case 0:
				if g.msg.Seq != nextA {
					return false
				}
				nextA++
			case 1:
				if g.msg.Seq != nextB {
					return false
				}
				nextB++
			}
		}
		return nextA == k && nextB == k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReliabilityAfterCrash(t *testing.T) {
	// Node 0 sends to node 1 and crashes immediately after: the message
	// must still be delivered (reliable channels, Section II-A).
	w := New(Config{N: 2, F: 1, Seed: 7, Delay: Constant{Ticks: 500}})
	rec := &recorder{w: w}
	w.SetHandler(1, rec)
	w.Go("d", func(p *Proc) {
		w.Runtime(0).Send(1, testMsg{Kd: "m", Seq: 1})
		w.Crash(0)
		// A send after the crash must be dropped.
		w.Runtime(0).Send(1, testMsg{Kd: "m", Seq: 2})
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rec.got) != 1 || rec.got[0].msg.Seq != 1 {
		t.Fatalf("got %v, want exactly the pre-crash message", rec.got)
	}
}

func TestCrashMidBroadcast(t *testing.T) {
	// The adversary lets node 0's broadcast reach only node 1, then
	// crashes node 0.
	adv := AdversaryFunc(func(now rt.Ticks, src int, msg rt.Message, dsts []int) ([]int, bool) {
		if src == 0 && msg.Kind() == "v" {
			return []int{1}, true
		}
		return dsts, false
	})
	w := New(Config{N: 4, F: 1, Seed: 7, Adversary: adv})
	recs := make([]*recorder, 4)
	for i := range recs {
		recs[i] = &recorder{w: w}
		w.SetHandler(i, recs[i])
	}
	w.Go("d", func(p *Proc) {
		w.Runtime(0).Broadcast(testMsg{Kd: "v", Seq: 9})
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !w.Crashed(0) {
		t.Fatal("node 0 should have crashed")
	}
	if len(recs[1].got) != 1 {
		t.Fatalf("node 1 should have received the value, got %v", recs[1].got)
	}
	for _, i := range []int{0, 2, 3} {
		if len(recs[i].got) != 0 {
			t.Fatalf("node %d should have received nothing, got %v", i, recs[i].got)
		}
	}
}

func TestWaitUntilThenAndCrashAbort(t *testing.T) {
	w := New(Config{N: 2, F: 1, Seed: 1})
	var counter int
	w.SetHandler(0, rt.HandlerFunc(func(src int, msg rt.Message) { counter++ }))
	var sawThen bool
	var waitErr error
	w.GoNode("client0", 0, func(p *Proc) {
		r := w.Runtime(0)
		waitErr = r.WaitUntilThen("counter>=3", func() bool { return counter >= 3 }, func() { sawThen = true })
	})
	w.Go("driver", func(p *Proc) {
		r1 := w.Runtime(1)
		for i := 0; i < 3; i++ {
			r1.Send(0, testMsg{Kd: "tick", Seq: i})
		}
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if waitErr != nil || !sawThen {
		t.Fatalf("wait: err=%v then=%v", waitErr, sawThen)
	}

	// Crash while blocked: the wait must fail with ErrCrashed.
	w2 := New(Config{N: 2, F: 1, Seed: 1})
	var err2 error
	w2.GoNode("client0", 0, func(p *Proc) {
		err2 = rt.WaitUntil(w2.Runtime(0), "never", func() bool { return false })
	})
	w2.CrashAt(0, 100)
	if err := w2.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(err2, rt.ErrCrashed) {
		t.Fatalf("err2 = %v, want ErrCrashed", err2)
	}
}

func TestDeadlockDetection(t *testing.T) {
	w := New(Config{N: 1, F: 0, Seed: 1})
	w.GoNode("stuck", 0, func(p *Proc) {
		_ = rt.WaitUntil(w.Runtime(0), "impossible", func() bool { return false })
	})
	err := w.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Waiters) != 1 || de.Waiters[0].Label != "impossible" || de.Waiters[0].Node != 0 {
		t.Fatalf("diagnostics: %+v", de.Waiters)
	}
	if !strings.Contains(de.Error(), "impossible") {
		t.Fatalf("error text lacks blocked predicate label: %v", de)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) string {
		w := New(Config{N: 5, F: 2, Seed: seed})
		var sb strings.Builder
		for i := 0; i < 5; i++ {
			id := i
			w.SetHandler(i, rt.HandlerFunc(func(src int, msg rt.Message) {
				fmt.Fprintf(&sb, "[%d] %d<-%d %v\n", w.Now(), id, src, msg)
				if m := msg.(testMsg); m.Seq > 0 {
					w.Runtime(id).Send((id+1)%5, testMsg{Kd: m.Kd, Seq: m.Seq - 1})
				}
			}))
		}
		w.Go("d", func(p *Proc) {
			w.Runtime(0).Broadcast(testMsg{Kd: "gossip", Seq: 6})
		})
		if err := w.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return sb.String()
	}
	a, b := trace(99), trace(99)
	if a != b {
		t.Fatalf("same seed produced different traces:\n%s\n---\n%s", a, b)
	}
	c := trace(100)
	if a == c {
		t.Fatal("different seeds should (almost surely) differ for random delays")
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	w := New(Config{N: 1, F: 0, Seed: 1})
	var t1, t2 rt.Ticks
	w.Go("sleeper", func(p *Proc) {
		t1 = p.Now()
		if err := p.Sleep(12345); err != nil {
			t.Errorf("sleep: %v", err)
		}
		t2 = p.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if t2-t1 < 12345 {
		t.Fatalf("slept only %d ticks", t2-t1)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("recover = %v, want panic containing 'boom'", r)
		}
	}()
	w := New(Config{N: 1, F: 0, Seed: 1})
	w.Go("bad", func(p *Proc) { panic("boom") })
	_ = w.Run()
	t.Fatal("unreachable: Run should have panicked")
}

func TestFailureChainsAdversary(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3(correct). The value broadcast by node 0
	// hops one node per broadcast; nodes 0,1,2 crash; node 3 finally
	// broadcasts it to everyone.
	keyOf := func(m rt.Message) (any, bool) {
		tm, ok := m.(testMsg)
		if !ok || tm.Kd != "value" {
			return nil, false
		}
		return tm.Seq, true
	}
	fc := NewFailureChains(keyOf, ChainSpec{Nodes: []int{0, 1, 2, 3}})
	if got := fc.FaultyNodes(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("FaultyNodes = %v", got)
	}
	w := New(Config{N: 5, F: 3, Seed: 3, Adversary: fc, Delay: Constant{Ticks: rt.TicksPerD}})
	recs := make([]*recorder, 5)
	firstSeen := make([]rt.Ticks, 5)
	for i := range recs {
		recs[i] = &recorder{w: w}
		id := i
		w.SetHandler(i, rt.HandlerFunc(func(src int, msg rt.Message) {
			recs[id].HandleMessage(src, msg)
			if firstSeen[id] == 0 {
				firstSeen[id] = w.Now()
				// forward once, like the algorithms do
				w.Runtime(id).Broadcast(msg)
			}
		}))
	}
	w.Go("d", func(p *Proc) {
		w.Runtime(0).Broadcast(testMsg{Kd: "value", Seq: 77})
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, i := range []int{0, 1, 2} {
		if !w.Crashed(i) {
			t.Fatalf("chain node %d should have crashed", i)
		}
	}
	// Node 4 (outside the chain) should learn the value only after 4 hops:
	// 0->1 (D), 1->2 (D), 2->3 (D), 3->4 (D) = 4D.
	want := 4 * rt.TicksPerD
	if firstSeen[4] != want {
		t.Fatalf("node 4 first saw the value at %d, want %d", firstSeen[4], want)
	}
}

func TestBuildChains(t *testing.T) {
	pool := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	chains, used := BuildChains(pool, 6, 42)
	// lengths 2 (1 faulty), 3 (2 faulty), 4 (3 faulty) = 6 faulty total
	if used != 6 || len(chains) != 3 {
		t.Fatalf("used=%d chains=%d", used, len(chains))
	}
	seen := map[int]bool{}
	for ci, c := range chains {
		if len(c.Nodes) != ci+2 {
			t.Fatalf("chain %d has length %d", ci, len(c.Nodes))
		}
		if c.Nodes[len(c.Nodes)-1] != 42 {
			t.Fatalf("chain %d terminal = %d", ci, c.Nodes[len(c.Nodes)-1])
		}
		for _, nd := range c.Nodes[:len(c.Nodes)-1] {
			if seen[nd] {
				t.Fatalf("faulty node %d reused", nd)
			}
			seen[nd] = true
		}
	}
}

func TestSelfDelayAndStats(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 5})
	var selfAt rt.Ticks
	w.SetHandler(0, rt.HandlerFunc(func(src int, msg rt.Message) { selfAt = w.Now() }))
	w.Go("d", func(p *Proc) {
		w.Runtime(0).Send(0, testMsg{Kd: "self", Seq: 0})
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if selfAt != 1 {
		t.Fatalf("self delivery at %d, want 1 tick", selfAt)
	}
	st := w.Stats()
	if st.MsgsTotal != 1 || st.MsgsByKind["self"] != 1 || st.SentByNode[0] != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDelayModels(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if d := (Constant{Ticks: 7}).Delay(0, 1, "x", 0, r); d != 7 {
		t.Fatalf("constant: %d", d)
	}
	u := Uniform{Min: 3, Max: 9}
	for i := 0; i < 100; i++ {
		if d := u.Delay(0, 1, "x", 0, r); d < 3 || d > 9 {
			t.Fatalf("uniform out of range: %d", d)
		}
	}
	if d := (Uniform{Min: 5, Max: 5}).Delay(0, 1, "x", 0, r); d != 5 {
		t.Fatalf("degenerate uniform: %d", d)
	}
	sl := SlowLinks{Slow: map[[2]int]bool{{0, 1}: true}, SlowDelay: 900, FastDelay: 10}
	if d := sl.Delay(0, 1, "x", 0, r); d != 900 {
		t.Fatalf("slow link: %d", d)
	}
	if d := sl.Delay(1, 0, "x", 0, r); d != 10 {
		t.Fatalf("fast link: %d", d)
	}
	df := DelayFunc(func(src, dst int, kind string, now rt.Ticks, r *rand.Rand) rt.Ticks { return 11 })
	if d := df.Delay(0, 1, "x", 0, r); d != 11 {
		t.Fatalf("delay func: %d", d)
	}
}

func TestMaxEventsBackstop(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 1, MaxEvents: 1000})
	// Two nodes ping-pong forever.
	for i := 0; i < 2; i++ {
		id := i
		w.SetHandler(i, rt.HandlerFunc(func(src int, msg rt.Message) {
			w.Runtime(id).Send(1-id, msg)
		}))
	}
	w.Go("d", func(p *Proc) { w.Runtime(0).Send(1, testMsg{Kd: "ping", Seq: 0}) })
	err := w.Run()
	if err == nil || !strings.Contains(err.Error(), "MaxEvents") {
		t.Fatalf("err = %v, want MaxEvents error", err)
	}
}
