package sim

import (
	"math/rand"
	"testing"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// ctMsg is a registered test-local message (tag in the reserved test
// range) so copy-through behaviour is observable without importing an
// algorithm package.
type ctMsg struct {
	Seq     int
	Payload []byte
}

func (ctMsg) Kind() string { return "ctMsg" }

func init() {
	wire.Register(wire.Codec{
		Tag: wire.TestTagBase, Proto: ctMsg{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(ctMsg)
			b.PutInt(msg.Seq)
			b.PutBytes(msg.Payload)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return ctMsg{Seq: d.Int(), Payload: d.Bytes()}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return ctMsg{Seq: rng.Intn(1 << 20), Payload: wire.GenPayload(rng)}
		},
	})
}

// TestCopyThroughDetachesMemory: with CopyThrough on, a receiver must see
// the bytes as they were at send time — mutating the sender's buffer
// afterwards cannot reach the receiver, exactly as over a real wire.
func TestCopyThroughDetachesMemory(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 1, CopyThrough: true})
	rec := &recorder2{}
	w.SetHandler(1, rec)
	payload := []byte("original")
	w.Go("driver", func(p *Proc) {
		w.Runtime(0).Send(1, ctMsg{Seq: 7, Payload: payload})
		payload[0] = 'X' // sender scribbles after the send
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rec.got) != 1 {
		t.Fatalf("received %d messages, want 1", len(rec.got))
	}
	got := rec.got[0].(ctMsg)
	if string(got.Payload) != "original" {
		t.Fatalf("receiver saw mutated payload %q", got.Payload)
	}
	if got.Seq != 7 {
		t.Fatalf("Seq = %d, want 7", got.Seq)
	}
}

// TestCopyThroughPassesUnregisteredTypes: test-local scaffolding messages
// without a codec still flow (by reference) under copy-through.
func TestCopyThroughPassesUnregisteredTypes(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 1, CopyThrough: true})
	rec := &recorder2{}
	w.SetHandler(1, rec)
	w.Go("driver", func(p *Proc) {
		w.Runtime(0).Send(1, testMsg{Kd: "scaffold", Seq: 3})
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rec.got) != 1 || rec.got[0].(testMsg).Seq != 3 {
		t.Fatalf("got %v, want the unregistered message delivered unchanged", rec.got)
	}
}

// recorder2 collects delivered messages.
type recorder2 struct{ got []rt.Message }

func (r *recorder2) HandleMessage(src int, msg rt.Message) { r.got = append(r.got, msg) }

// dropEvens drops every message with an even ctMsg.Seq and rewrites odd
// seqs to 99.
type dropEvens struct{}

func (dropEvens) OnWire(now rt.Ticks, src, dst int, msg rt.Message) (rt.Message, bool) {
	m, ok := msg.(ctMsg)
	if !ok {
		return nil, false
	}
	if m.Seq%2 == 0 {
		return nil, true
	}
	m.Seq = 99
	return m, false
}

// TestWireFaultHook: the Wire hook can kill and rewrite messages, and
// both actions are counted and traced as corruption.
func TestWireFaultHook(t *testing.T) {
	w := New(Config{N: 2, F: 0, Seed: 1, Wire: dropEvens{}})
	rec := &recorder2{}
	w.SetHandler(1, rec)
	var corruptTraces int
	w.SetTracer(func(ev TraceEvent) {
		if ev.Kind == "corrupt" {
			corruptTraces++
		}
	})
	w.Go("driver", func(p *Proc) {
		r0 := w.Runtime(0)
		for i := 0; i < 6; i++ {
			r0.Send(1, ctMsg{Seq: i})
		}
	})
	if err := w.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rec.got) != 3 {
		t.Fatalf("received %d messages, want 3 survivors", len(rec.got))
	}
	for _, m := range rec.got {
		if m.(ctMsg).Seq != 99 {
			t.Fatalf("survivor not rewritten: %v", m)
		}
	}
	st := w.Stats()
	if st.MsgsCorrupt != 6 {
		t.Fatalf("MsgsCorrupt = %d, want 6 (3 kills + 3 rewrites)", st.MsgsCorrupt)
	}
	if st.MsgsDrop != 3 {
		t.Fatalf("MsgsDrop = %d, want 3", st.MsgsDrop)
	}
	if corruptTraces != 6 {
		t.Fatalf("corrupt trace events = %d, want 6", corruptTraces)
	}
}
