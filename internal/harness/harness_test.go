package harness_test

import (
	"strings"
	"testing"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

func build(cfg sim.Config) *harness.Cluster {
	return harness.Build(cfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := eqaso.New(r)
		return nd, nd
	})
}

func TestOpRunnerRecordsHistory(t *testing.T) {
	c := build(sim.Config{N: 3, F: 1, Seed: 1})
	c.Client(0, func(o *harness.OpRunner) {
		if o.Node() != 0 {
			t.Errorf("node = %d", o.Node())
		}
		v1, err := o.Update()
		if err != nil || v1 != "v0-1" {
			t.Errorf("update: %q, %v", v1, err)
		}
		v2, err := o.Update()
		if err != nil || v2 != "v0-2" {
			t.Errorf("update: %q, %v", v2, err)
		}
		snap, err := o.Scan()
		if err != nil || snap[0] != "v0-2" {
			t.Errorf("scan: %v, %v", snap, err)
		}
		if o.Object() == nil {
			t.Error("raw object must be accessible")
		}
	})
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Ops); got != 3 {
		t.Fatalf("recorded %d ops, want 3", got)
	}
	st := harness.Latencies(h)
	if st.Count != 3 || st.WorstUpdate <= 0 || st.WorstScan <= 0 {
		t.Fatalf("latencies: %+v", st)
	}
	if st.MeanAll <= 0 || st.MeanUpdate <= 0 || st.MeanScan <= 0 {
		t.Fatalf("means: %+v", st)
	}
}

func TestSnapStrings(t *testing.T) {
	got := harness.SnapStrings([][]byte{[]byte("a"), nil, {}})
	if got[0] != "a" || got[1] != history.NoValue || got[2] != "" {
		t.Fatalf("SnapStrings = %q", got)
	}
}

func TestMustLinearizableReportsViolations(t *testing.T) {
	// A broken "object" that loses updates: MustLinearizable must fail
	// with a descriptive error.
	type brokenObj struct{ n int }
	var _ = brokenObj{}
	c := harness.Build(sim.Config{N: 2, F: 0, Seed: 1}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		return rt.HandlerFunc(func(int, rt.Message) {}), lossyObject{n: r.N()}
	})
	c.Client(0, func(o *harness.OpRunner) {
		_, _ = o.Update()
		_ = o.P.Sleep(10) // separate in time: the update precedes the scan
		_, _ = o.Scan()   // returns all-⊥, losing the preceding update
	})
	_, err := c.MustLinearizable()
	if err == nil || !strings.Contains(err.Error(), "not linearizable") {
		t.Fatalf("err = %v, want linearizability failure", err)
	}
}

// lossyObject acknowledges updates without storing them.
type lossyObject struct{ n int }

func (l lossyObject) Update(p []byte) error { return nil }
func (l lossyObject) Scan() ([][]byte, error) {
	return make([][]byte, l.n), nil
}

func TestLatenciesSkipsPendingOps(t *testing.T) {
	rec := history.NewRecorder(2)
	p := rec.BeginUpdate(0, "x", 0)
	p.End(100)
	rec.BeginUpdate(1, "y", 50) // never completes
	st := harness.Latencies(rec.History())
	if st.Count != 1 {
		t.Fatalf("count = %d, want 1 (pending excluded)", st.Count)
	}
}
