// Package harness wires snapshot-object implementations into the simulator
// and the history checker. Tests and benchmarks across the repository use
// it to run workloads, record histories, and measure operation latencies
// in units of D.
package harness

import (
	"fmt"
	"sort"

	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// Object is the client interface every snapshot object in this repository
// implements (EQ-ASO, SSO, Byzantine ASO, and all baselines).
type Object interface {
	// Update writes payload to the caller's segment.
	Update(payload []byte) error
	// Scan returns one entry per segment; nil marks ⊥.
	Scan() ([][]byte, error)
}

// Cluster is a simulated deployment of one snapshot object.
type Cluster struct {
	W       *sim.World
	Objects []Object
	Rec     *history.Recorder

	nextCID []int // per-node client-id counter (multi-client runs)
}

// Build constructs a cluster: for each node, mk creates the message handler
// and the client object (they are usually the same value).
func Build(cfg sim.Config, mk func(r rt.Runtime) (rt.Handler, Object)) *Cluster {
	w := sim.New(cfg)
	c := &Cluster{W: w, Rec: history.NewRecorder(cfg.N), nextCID: make([]int, cfg.N)}
	c.Objects = make([]Object, cfg.N)
	for i := 0; i < cfg.N; i++ {
		h, obj := mk(w.Runtime(i))
		w.SetHandler(i, h)
		c.Objects[i] = obj
	}
	return c
}

// OpRunner issues recorded operations for one node's client thread.
type OpRunner struct {
	c    *Cluster
	P    *sim.Proc
	obj  Object
	node int
	cid  int
	seq  int
}

// Client spawns node's client thread running script and returns once the
// process is registered (the simulation starts at W.Run).
func (c *Cluster) Client(node int, script func(o *OpRunner)) {
	c.ClientOn(node, c.Objects[node], script)
}

// ClientOn is Client driving an alternative object front — typically a
// svc.Service wrapping the node's object, so several concurrent client
// threads per node can share one protocol instance. Each call gets a fresh
// client id; value uniqueness across a node's clients is preserved (the
// first client writes "v<node>-<seq>" exactly as single-client runs always
// did, client c>0 writes "v<node>.<c>-<seq>").
func (c *Cluster) ClientOn(node int, obj Object, script func(o *OpRunner)) {
	cid := c.nextCID[node]
	c.nextCID[node]++
	name := fmt.Sprintf("client-%d", node)
	if cid > 0 {
		name = fmt.Sprintf("client-%d.%d", node, cid)
	}
	c.W.GoNode(name, node, func(p *sim.Proc) {
		script(&OpRunner{c: c, P: p, obj: obj, node: node, cid: cid})
	})
}

// Node returns the runner's node ID.
func (o *OpRunner) Node() int { return o.node }

// Object returns the object this runner drives (unrecorded).
func (o *OpRunner) Object() Object { return o.obj }

// Update issues a recorded UPDATE with an automatically unique value
// ("v<node>-<seq>", or "v<node>.<cid>-<seq>" for extra clients) and
// returns the value written.
func (o *OpRunner) Update() (string, error) {
	o.seq++
	var v string
	if o.cid == 0 {
		v = fmt.Sprintf("v%d-%d", o.node, o.seq)
	} else {
		v = fmt.Sprintf("v%d.%d-%d", o.node, o.cid, o.seq)
	}
	return v, o.UpdateValue(v)
}

// UpdateValue issues a recorded UPDATE writing v.
func (o *OpRunner) UpdateValue(v string) error {
	pend := o.c.Rec.BeginUpdateAs(o.node, o.cid, v, o.c.W.Now())
	err := o.obj.Update([]byte(v))
	if err != nil {
		return err // pending: no response event
	}
	pend.End(o.c.W.Now())
	return nil
}

// Scan issues a recorded SCAN and returns the segment values ("" = ⊥).
func (o *OpRunner) Scan() ([]string, error) {
	pend := o.c.Rec.BeginScanAs(o.node, o.cid, o.c.W.Now())
	snap, err := o.obj.Scan()
	if err != nil {
		return nil, err
	}
	out := SnapStrings(snap)
	pend.EndScan(out, o.c.W.Now())
	return out, nil
}

// SnapStrings converts a payload vector to the history package's string
// representation (nil payload → history.NoValue).
func SnapStrings(snap [][]byte) []string {
	out := make([]string, len(snap))
	for i, b := range snap {
		if b != nil {
			out[i] = string(b)
		}
	}
	return out
}

// Run executes the simulation and finalizes the history.
func (c *Cluster) Run() (*history.History, error) {
	err := c.W.Run()
	return c.Rec.History(), err
}

// MustLinearizable runs the cluster and fails with a descriptive error if
// the run errors (other than expected crashes aborting client procs) or
// the history is not linearizable.
func (c *Cluster) MustLinearizable() (*history.History, error) {
	h, err := c.Run()
	if err != nil {
		return h, err
	}
	if rep := h.CheckLinearizable(); !rep.OK {
		return h, fmt.Errorf("history not linearizable: %d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	return h, nil
}

// LatencyStats summarizes operation latencies of a history in D units.
type LatencyStats struct {
	Count          int
	WorstUpdate    float64
	WorstScan      float64
	MeanUpdate     float64
	MeanScan       float64
	MeanAll        float64
	P50All, P99All float64
	updates, scans int
}

// Latencies computes per-type latency statistics over completed operations.
func Latencies(h *history.History) LatencyStats {
	var st LatencyStats
	var sumU, sumS float64
	var all []float64
	for _, op := range h.Ops {
		if op.Pending() {
			continue
		}
		l := (op.Resp - op.Inv).DUnits()
		st.Count++
		all = append(all, l)
		if op.Type == history.Update {
			st.updates++
			sumU += l
			if l > st.WorstUpdate {
				st.WorstUpdate = l
			}
		} else {
			st.scans++
			sumS += l
			if l > st.WorstScan {
				st.WorstScan = l
			}
		}
	}
	if st.updates > 0 {
		st.MeanUpdate = sumU / float64(st.updates)
	}
	if st.scans > 0 {
		st.MeanScan = sumS / float64(st.scans)
	}
	if st.Count > 0 {
		st.MeanAll = (sumU + sumS) / float64(st.Count)
		sort.Float64s(all)
		st.P50All = percentile(all, 0.50)
		st.P99All = percentile(all, 0.99)
	}
	return st
}

// percentile returns the p-quantile of sorted values (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
