package history

import (
	"sort"

	"mpsnap/internal/rt"
)

// This file holds the condition machinery shared by the offline checker
// (CheckA1-CheckA4, which see a finished history) and the streaming
// monitor (internal/monitor, which sees operations one at a time on a
// sliding window). Both express the paper's (A1)-(A4) over the same three
// incremental structures:
//
//   - Chain      — (A1) comparability: the multiset of scan bases forms a
//     chain under ⊆; maintained incrementally by sum-ordered insertion.
//   - Frontier   — (A3) containment by real-time order: the pointwise max
//     of bases of scans completed strictly before a time t; any scan
//     invoked at t must dominate it.
//   - Completions — (A2)/(A4) update requirements: per-writer monotone
//     (resp, seq) steps answering "how many of this writer's updates had
//     completed strictly before t".
//
// Keeping one implementation guarantees the two checkers cannot drift:
// the equivalence tests in internal/monitor replay recorded histories
// through both and require identical verdicts.

// Chain maintains the (A1) invariant incrementally: a multiset of bases
// that must remain totally ordered by containment. Insert places the new
// base by total size and verifies containment against both neighbours —
// a multiset of per-writer prefix vectors is a chain if and only if its
// size-sorted order is containment-sorted, so checking the two adjacent
// elements at every insertion is exact, not a heuristic.
type Chain struct {
	bases []Base // sorted by Sum, ties in insertion order
}

// Insert adds base to the chain. It returns ok=true when the multiset is
// still a chain, and otherwise the existing member that is incomparable
// with the newcomer (the chain keeps the newcomer either way, so one
// corrupt scan yields one violation, not one per subsequent scan).
func (c *Chain) Insert(base Base) (conflict Base, ok bool) {
	s := base.Sum()
	// Position after every member with Sum ≤ s: among equal sums, distinct
	// bases are incomparable, and the predecessor check below catches them.
	i := sort.Search(len(c.bases), func(i int) bool { return c.bases[i].Sum() > s })
	conflict, ok = nil, true
	if i > 0 && !c.bases[i-1].LE(base) {
		conflict, ok = c.bases[i-1], false
	} else if i < len(c.bases) && !base.LE(c.bases[i]) {
		conflict, ok = c.bases[i], false
	}
	c.bases = append(c.bases, nil)
	copy(c.bases[i+1:], c.bases[i:])
	c.bases[i] = base
	return conflict, ok
}

// Remove drops one member equal to base (window eviction). It reports
// whether a member was found.
func (c *Chain) Remove(base Base) bool {
	s := base.Sum()
	i := sort.Search(len(c.bases), func(i int) bool { return c.bases[i].Sum() >= s })
	for ; i < len(c.bases) && c.bases[i].Sum() == s; i++ {
		if c.bases[i].Equal(base) {
			c.bases = append(c.bases[:i], c.bases[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of bases in the chain.
func (c *Chain) Len() int { return len(c.bases) }

// Frontier is the running pointwise maximum of completed-scan bases,
// indexed by completion time: At(t) answers "what must any scan invoked
// at t contain" — the (A3) requirement, aggregated. Entries are stored as
// a monotone staircase (time and base both nondecreasing), so a query is
// one binary search and pruning keeps only the staircase tail.
type Frontier struct {
	steps []frontierStep
}

type frontierStep struct {
	at   rt.Ticks // completion time of the scan that raised the frontier
	base Base     // cumulative pointwise max up to and including at
}

// Add folds in the base of a scan that completed at time at. Out-of-order
// completion times (possible under concurrent transport clients) are
// clamped forward, which can only weaken later requirements — the safe
// direction for a monitor that must never report a false violation.
func (f *Frontier) Add(at rt.Ticks, base Base) {
	if n := len(f.steps); n > 0 {
		last := f.steps[n-1]
		if at < last.at {
			at = last.at
		}
		if last.base.LE(base) && !base.LE(last.base) {
			// Strictly higher: new step (merge below keeps staircase thin).
		} else if base.LE(last.base) {
			return // no new information
		}
		merged := make(Base, len(last.base))
		for i := range merged {
			merged[i] = last.base[i]
			if base[i] > merged[i] {
				merged[i] = base[i]
			}
		}
		if at == last.at {
			f.steps[n-1].base = merged
			return
		}
		f.steps = append(f.steps, frontierStep{at: at, base: merged})
		return
	}
	f.steps = append(f.steps, frontierStep{at: at, base: append(Base(nil), base...)})
}

// At returns the frontier strictly before t: the pointwise max of bases
// of scans with resp < t. The returned Base is shared; callers must not
// mutate it. nil means "no requirement".
func (f *Frontier) At(t rt.Ticks) Base {
	i := sort.Search(len(f.steps), func(i int) bool { return f.steps[i].at >= t })
	if i == 0 {
		return nil
	}
	return f.steps[i-1].base
}

// PruneBefore drops staircase steps older than t, keeping the newest
// dropped step as the baseline (queries at or above its time stay exact;
// queries below can only under-require — again the safe direction).
func (f *Frontier) PruneBefore(t rt.Ticks) {
	i := sort.Search(len(f.steps), func(i int) bool { return f.steps[i].at >= t })
	if i > 1 {
		f.steps = append(f.steps[:0], f.steps[i-1:]...)
	}
}

// Floor returns the baseline frontier — the requirement every future scan
// must meet regardless of query time (nil when the frontier is empty).
func (f *Frontier) Floor() Base {
	if len(f.steps) == 0 {
		return nil
	}
	return f.steps[0].base
}

// Completions records one writer's update completions as a monotone
// (resp, seq) staircase and answers the (A2)/(A4) requirement "how many
// of this writer's updates completed strictly before t". Out-of-order
// completions (a later-seq update finishing first, as svc batches allow)
// fold into the staircase exactly the way the offline precCounts does:
// the requirement at t is the highest seq whose completion precedes t.
type Completions struct {
	steps []complStep
}

type complStep struct {
	resp rt.Ticks
	seq  int
}

// Add records that update seq completed at resp. Non-monotone times are
// clamped forward (safe direction, see Frontier.Add); non-monotone seqs
// are dropped — a lower seq completing later adds no requirement beyond
// the higher seq already recorded.
func (c *Completions) Add(resp rt.Ticks, seq int) {
	if n := len(c.steps); n > 0 {
		last := c.steps[n-1]
		if seq <= last.seq {
			return
		}
		if resp < last.resp {
			resp = last.resp
		}
		if resp == last.resp {
			c.steps[n-1].seq = seq
			return
		}
	}
	c.steps = append(c.steps, complStep{resp: resp, seq: seq})
}

// Before returns the highest seq that completed strictly before t
// (0 when none known).
func (c *Completions) Before(t rt.Ticks) int {
	i := sort.Search(len(c.steps), func(i int) bool { return c.steps[i].resp >= t })
	if i == 0 {
		return 0
	}
	return c.steps[i-1].seq
}

// PruneBefore drops steps older than t, keeping the newest dropped step
// so queries at or above t stay exact (below, they under-require).
func (c *Completions) PruneBefore(t rt.Ticks) {
	i := sort.Search(len(c.steps), func(i int) bool { return c.steps[i].resp >= t })
	if i > 1 {
		c.steps = append(c.steps[:0], c.steps[i-1:]...)
	}
}

// completionIndex builds the per-writer Completions of a finished history
// (offline side of the shared machinery).
func (h *History) completionIndex() []*Completions {
	idx := make([]*Completions, h.N)
	type done struct {
		resp rt.Ticks
		seq  int
	}
	for j := 0; j < h.N; j++ {
		var ds []done
		for _, u := range h.updatesByNode[j] {
			if !u.Pending() {
				ds = append(ds, done{resp: u.Resp, seq: u.Seq})
			}
		}
		sort.SliceStable(ds, func(a, b int) bool { return ds[a].resp < ds[b].resp })
		c := &Completions{}
		for _, d := range ds {
			c.Add(d.resp, d.seq)
		}
		idx[j] = c
	}
	return idx
}
