package history

import (
	"fmt"

	"mpsnap/internal/rt"
)

// FromFuzzBytes deterministically decodes a byte string into a small
// history: a compact encoding so fuzzers can explore the space of
// histories directly. It is shared by FuzzCheckerAgainstBruteForce here
// and FuzzMonitorWindow in internal/monitor, so both walk the same
// corpus shapes.
//
// Per operation, 4 bytes: [node|flags] [invDelta] [duration] [segment
// value selector]. Flag 0x80 makes the op a scan; flag 0x40 makes it
// pending — the node crashed during the op, so it has no response and
// stays down (later ops decoded for a crashed node are skipped) unless a
// later op carries flag 0x20, which restarts the node: that op opens the
// recovered incarnation (crash-recovery, as chaos restart schedules
// record). Scan results are synthesized from the selector per segment,
// choosing among ⊥ and the values that segment's owner writes anywhere
// in the history — including values of pending updates, which may
// legitimately have taken effect (so BaseOf always resolves, and the
// fuzzer reaches deep checker logic rather than tripping on unknown
// values).
func FromFuzzBytes(data []byte) *History {
	const n = 2
	nOps := len(data) / 4
	if nOps > 7 {
		nOps = 7
	}
	// First pass: update values per node, in program order.
	type raw struct {
		node    int
		scan    bool
		pending bool
		inv     rt.Ticks
		resp    rt.Ticks
		sel     byte
		updName string
	}
	var raws []raw
	busy := [n]rt.Ticks{}
	count := [n]int{}
	crashed := [n]bool{}
	for i := 0; i < nOps; i++ {
		b := data[i*4 : i*4+4]
		node := int(b[0]) % n
		if crashed[node] {
			if b[0]&0x20 == 0 {
				continue
			}
			crashed[node] = false // 0x20 restarts the node
		}
		isScan := b[0]&0x80 != 0
		pending := b[0]&0x40 != 0
		inv := busy[node] + rt.Ticks(b[1]%8)
		dur := rt.Ticks(b[2]%8) + 1
		r := raw{node: node, scan: isScan, pending: pending, inv: inv, resp: inv + dur, sel: b[3]}
		if !isScan {
			count[node]++
			r.updName = fmt.Sprintf("v%d-%d", node, count[node])
		}
		if pending {
			crashed[node] = true
		}
		busy[node] = r.resp + 1
		raws = append(raws, r)
	}
	valsByNode := [n][]string{}
	for _, r := range raws {
		if !r.scan {
			valsByNode[r.node] = append(valsByNode[r.node], r.updName)
		}
	}
	ops := make([]*Op, 0, len(raws))
	for i, r := range raws {
		switch {
		case r.scan && r.pending:
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Scan, Inv: r.inv, Resp: -1})
		case r.scan:
			snap := make([]string, n)
			sel := int(r.sel)
			for seg := 0; seg < n; seg++ {
				choices := len(valsByNode[seg]) + 1 // incl ⊥
				pick := sel % choices
				sel /= choices
				if pick > 0 {
					snap[seg] = valsByNode[seg][pick-1]
				}
			}
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Scan, Snap: snap, Inv: r.inv, Resp: r.resp})
		case r.pending:
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Update, Arg: r.updName, Inv: r.inv, Resp: -1})
		default:
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Update, Arg: r.updName, Inv: r.inv, Resp: r.resp})
		}
	}
	return NewHistory(n, ops)
}
