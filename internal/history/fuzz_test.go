package history

import (
	"testing"
)

// FuzzCheckerAgainstBruteForce drives the Theorem 1 checker against
// exhaustive search on fuzzer-chosen histories. The byte encoding is
// FromFuzzBytes (fuzzgen.go), shared with FuzzMonitorWindow.
func FuzzCheckerAgainstBruteForce(f *testing.F) {
	f.Add([]byte{0x00, 1, 2, 0, 0x81, 1, 2, 3, 0x01, 0, 1, 5})
	f.Add([]byte{0x80, 0, 0, 1, 0x00, 0, 0, 0, 0x81, 0, 0, 2, 0x01, 7, 7, 9})
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4})
	// Partition-era shapes: crashed updaters (0x40) whose pending updates
	// a later scan may or may not observe, and a pending scan.
	f.Add([]byte{0x40, 1, 2, 0, 0x81, 3, 4, 1, 0x01, 0, 1, 0})
	f.Add([]byte{0x00, 0, 1, 0, 0x40, 2, 2, 0, 0x81, 0, 6, 2, 0x01, 1, 1, 3})
	f.Add([]byte{0xc1, 0, 3, 0, 0x00, 1, 1, 0, 0x80, 2, 2, 1})
	f.Add([]byte{0x40, 0, 7, 0, 0x41, 1, 7, 0, 0x80, 0, 1, 2})
	// Crash-recovery shapes: a node crashes mid-update (0x40), restarts
	// (0x20), and keeps operating — its pending update may or may not
	// have taken effect, and the new incarnation's scans must be checked
	// against both possibilities.
	f.Add([]byte{0x40, 1, 2, 0, 0x20, 1, 2, 0, 0x80, 2, 2, 1})
	f.Add([]byte{0x40, 0, 3, 0, 0x01, 1, 1, 0, 0xa0, 2, 2, 2, 0x81, 1, 1, 3})
	f.Add([]byte{0x40, 0, 2, 0, 0x60, 1, 2, 0, 0x20, 1, 1, 0, 0x80, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := FromFuzzBytes(data)
		if len(h.Ops) == 0 {
			return
		}
		got := h.CheckLinearizable().OK
		want := bruteForceLinearizable(h)
		if got != want {
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			t.Fatalf("checker=%v brute=%v", got, want)
		}
		gotSC := h.CheckSequentiallyConsistent().OK
		wantSC := bruteForceSequentiallyConsistent(h)
		if gotSC != wantSC {
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			t.Fatalf("SC checker=%v brute=%v", gotSC, wantSC)
		}
		if got && !gotSC {
			t.Fatal("linearizable history must be sequentially consistent")
		}
	})
}
