package history

import (
	"fmt"
	"testing"

	"mpsnap/internal/rt"
)

// historyFromBytes deterministically decodes a byte string into a small
// history: a compact encoding so the fuzzer can explore the space of
// histories directly.
//
// Per operation, 4 bytes: [node|flags] [invDelta] [duration] [segment
// value selector]. Flag 0x80 makes the op a scan; flag 0x40 makes it
// pending — the node crashed during the op, so it has no response and
// stays down (later ops decoded for a crashed node are skipped) unless a
// later op carries flag 0x20, which restarts the node: that op opens the
// recovered incarnation (crash-recovery, as chaos restart schedules
// record). Scan results are synthesized from the selector per segment,
// choosing among ⊥ and the values that segment's owner writes anywhere
// in the history — including values of pending updates, which may
// legitimately have taken effect (so BaseOf always resolves, and the
// fuzzer reaches deep checker logic rather than tripping on unknown
// values).
func historyFromBytes(data []byte) *History {
	const n = 2
	nOps := len(data) / 4
	if nOps > 7 {
		nOps = 7
	}
	// First pass: update values per node, in program order.
	type raw struct {
		node    int
		scan    bool
		pending bool
		inv     rt.Ticks
		resp    rt.Ticks
		sel     byte
		updName string
	}
	var raws []raw
	busy := [n]rt.Ticks{}
	count := [n]int{}
	crashed := [n]bool{}
	for i := 0; i < nOps; i++ {
		b := data[i*4 : i*4+4]
		node := int(b[0]) % n
		if crashed[node] {
			if b[0]&0x20 == 0 {
				continue
			}
			crashed[node] = false // 0x20 restarts the node
		}
		isScan := b[0]&0x80 != 0
		pending := b[0]&0x40 != 0
		inv := busy[node] + rt.Ticks(b[1]%8)
		dur := rt.Ticks(b[2]%8) + 1
		r := raw{node: node, scan: isScan, pending: pending, inv: inv, resp: inv + dur, sel: b[3]}
		if !isScan {
			count[node]++
			r.updName = fmt.Sprintf("v%d-%d", node, count[node])
		}
		if pending {
			crashed[node] = true
		}
		busy[node] = r.resp + 1
		raws = append(raws, r)
	}
	valsByNode := [n][]string{}
	for _, r := range raws {
		if !r.scan {
			valsByNode[r.node] = append(valsByNode[r.node], r.updName)
		}
	}
	ops := make([]*Op, 0, len(raws))
	for i, r := range raws {
		switch {
		case r.scan && r.pending:
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Scan, Inv: r.inv, Resp: -1})
		case r.scan:
			snap := make([]string, n)
			sel := int(r.sel)
			for seg := 0; seg < n; seg++ {
				choices := len(valsByNode[seg]) + 1 // incl ⊥
				pick := sel % choices
				sel /= choices
				if pick > 0 {
					snap[seg] = valsByNode[seg][pick-1]
				}
			}
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Scan, Snap: snap, Inv: r.inv, Resp: r.resp})
		case r.pending:
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Update, Arg: r.updName, Inv: r.inv, Resp: -1})
		default:
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Update, Arg: r.updName, Inv: r.inv, Resp: r.resp})
		}
	}
	return NewHistory(n, ops)
}

// FuzzCheckerAgainstBruteForce drives the Theorem 1 checker against
// exhaustive search on fuzzer-chosen histories.
func FuzzCheckerAgainstBruteForce(f *testing.F) {
	f.Add([]byte{0x00, 1, 2, 0, 0x81, 1, 2, 3, 0x01, 0, 1, 5})
	f.Add([]byte{0x80, 0, 0, 1, 0x00, 0, 0, 0, 0x81, 0, 0, 2, 0x01, 7, 7, 9})
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4})
	// Partition-era shapes: crashed updaters (0x40) whose pending updates
	// a later scan may or may not observe, and a pending scan.
	f.Add([]byte{0x40, 1, 2, 0, 0x81, 3, 4, 1, 0x01, 0, 1, 0})
	f.Add([]byte{0x00, 0, 1, 0, 0x40, 2, 2, 0, 0x81, 0, 6, 2, 0x01, 1, 1, 3})
	f.Add([]byte{0xc1, 0, 3, 0, 0x00, 1, 1, 0, 0x80, 2, 2, 1})
	f.Add([]byte{0x40, 0, 7, 0, 0x41, 1, 7, 0, 0x80, 0, 1, 2})
	// Crash-recovery shapes: a node crashes mid-update (0x40), restarts
	// (0x20), and keeps operating — its pending update may or may not
	// have taken effect, and the new incarnation's scans must be checked
	// against both possibilities.
	f.Add([]byte{0x40, 1, 2, 0, 0x20, 1, 2, 0, 0x80, 2, 2, 1})
	f.Add([]byte{0x40, 0, 3, 0, 0x01, 1, 1, 0, 0xa0, 2, 2, 2, 0x81, 1, 1, 3})
	f.Add([]byte{0x40, 0, 2, 0, 0x60, 1, 2, 0, 0x20, 1, 1, 0, 0x80, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := historyFromBytes(data)
		if len(h.Ops) == 0 {
			return
		}
		got := h.CheckLinearizable().OK
		want := bruteForceLinearizable(h)
		if got != want {
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			t.Fatalf("checker=%v brute=%v", got, want)
		}
		gotSC := h.CheckSequentiallyConsistent().OK
		wantSC := bruteForceSequentiallyConsistent(h)
		if gotSC != wantSC {
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			t.Fatalf("SC checker=%v brute=%v", gotSC, wantSC)
		}
		if got && !gotSC {
			t.Fatal("linearizable history must be sequentially consistent")
		}
	})
}
