package history

import (
	"fmt"
	"testing"

	"mpsnap/internal/rt"
)

// historyFromBytes deterministically decodes a byte string into a small
// history of completed operations: a compact encoding so the fuzzer can
// explore the space of histories directly.
//
// Per operation, 4 bytes: [node|scan flag] [invDelta] [duration] [segment
// value selector]. Scan results are synthesized from the selector per
// segment, choosing among ⊥ and the values that segment's owner writes
// anywhere in the history (so BaseOf always resolves, and the fuzzer
// reaches deep checker logic rather than tripping on unknown values).
func historyFromBytes(data []byte) *History {
	const n = 2
	nOps := len(data) / 4
	if nOps > 7 {
		nOps = 7
	}
	// First pass: update values per node, in program order.
	type raw struct {
		node    int
		scan    bool
		inv     rt.Ticks
		resp    rt.Ticks
		sel     byte
		updName string
	}
	var raws []raw
	busy := [n]rt.Ticks{}
	count := [n]int{}
	for i := 0; i < nOps; i++ {
		b := data[i*4 : i*4+4]
		node := int(b[0]) % n
		isScan := b[0]&0x80 != 0
		inv := busy[node] + rt.Ticks(b[1]%8)
		dur := rt.Ticks(b[2]%8) + 1
		r := raw{node: node, scan: isScan, inv: inv, resp: inv + dur, sel: b[3]}
		if !isScan {
			count[node]++
			r.updName = fmt.Sprintf("v%d-%d", node, count[node])
		}
		busy[node] = r.resp + 1
		raws = append(raws, r)
	}
	valsByNode := [n][]string{}
	for _, r := range raws {
		if !r.scan {
			valsByNode[r.node] = append(valsByNode[r.node], r.updName)
		}
	}
	ops := make([]*Op, 0, len(raws))
	for i, r := range raws {
		if r.scan {
			snap := make([]string, n)
			sel := int(r.sel)
			for seg := 0; seg < n; seg++ {
				choices := len(valsByNode[seg]) + 1 // incl ⊥
				pick := sel % choices
				sel /= choices
				if pick > 0 {
					snap[seg] = valsByNode[seg][pick-1]
				}
			}
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Scan, Snap: snap, Inv: r.inv, Resp: r.resp})
		} else {
			ops = append(ops, &Op{ID: i, Node: r.node, Type: Update, Arg: r.updName, Inv: r.inv, Resp: r.resp})
		}
	}
	return NewHistory(n, ops)
}

// FuzzCheckerAgainstBruteForce drives the Theorem 1 checker against
// exhaustive search on fuzzer-chosen histories.
func FuzzCheckerAgainstBruteForce(f *testing.F) {
	f.Add([]byte{0x00, 1, 2, 0, 0x81, 1, 2, 3, 0x01, 0, 1, 5})
	f.Add([]byte{0x80, 0, 0, 1, 0x00, 0, 0, 0, 0x81, 0, 0, 2, 0x01, 7, 7, 9})
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := historyFromBytes(data)
		if len(h.Ops) == 0 {
			return
		}
		got := h.CheckLinearizable().OK
		want := bruteForceLinearizable(h)
		if got != want {
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			t.Fatalf("checker=%v brute=%v", got, want)
		}
		gotSC := h.CheckSequentiallyConsistent().OK
		wantSC := bruteForceSequentiallyConsistent(h)
		if gotSC != wantSC {
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			t.Fatalf("SC checker=%v brute=%v", gotSC, wantSC)
		}
		if got && !gotSC {
			t.Fatal("linearizable history must be sequentially consistent")
		}
	})
}
