package history

import (
	"strings"
	"testing"
)

func TestRenderGantt(t *testing.T) {
	h := NewHistory(2, []*Op{
		upd(1, 0, "a", 0, 40),
		scn(2, 1, []string{"a", ""}, 50, 90),
		upd(3, 1, "b", 95, -1), // pending
	})
	out := RenderGantt(h, 80)
	if !strings.Contains(out, "U(a)") || !strings.Contains(out, "S[a,⊥]") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "node 0") || !strings.Contains(out, "node 1") {
		t.Fatalf("node rows missing:\n%s", out)
	}
	if !strings.Contains(out, "..x") {
		t.Fatalf("pending op marker missing:\n%s", out)
	}
	// The update's box must start before the scan's box (column order).
	lines := strings.Split(out, "\n")
	var row0, row1 string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "node 0") {
			row0 = ln
		}
		if strings.HasPrefix(ln, "node 1") {
			row1 = ln
		}
	}
	if strings.Index(row0, "|") >= strings.Index(row1, "|U") && strings.Contains(row1, "|U") {
		t.Fatalf("unexpected layout:\n%s", out)
	}
}

func TestRenderGanttOverlapLanes(t *testing.T) {
	// Two visually overlapping ops at the same node (possible with a
	// pending op followed by nothing, or tight scaling) must not panic
	// and must appear on separate lanes when needed.
	h := NewHistory(1, []*Op{
		upd(1, 0, "a", 0, 1000),
		upd(2, 0, "b", 1001, 1002), // tiny box forced wider than its slot
		upd(3, 0, "c", 1003, 1004),
	})
	out := RenderGantt(h, 40)
	for _, lbl := range []string{"U(a)", "U(b)", "U(c)"} {
		if !strings.Contains(out, lbl) {
			t.Fatalf("missing %s:\n%s", lbl, out)
		}
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	h := NewHistory(1, nil)
	if out := RenderGantt(h, 60); !strings.Contains(out, "time:") {
		t.Fatalf("header missing: %q", out)
	}
}
