package history

import (
	"fmt"
	"sort"
)

// Report is the outcome of checking a history.
type Report struct {
	// OK is true when no violation was found.
	OK bool
	// Violations lists every detected violation.
	Violations []string
	// Order is the constructed linearization (or sequentialization),
	// valid when OK.
	Order []*Op
}

func (r *Report) String() string {
	if r.OK {
		return fmt.Sprintf("OK (%d ops ordered)", len(r.Order))
	}
	return fmt.Sprintf("FAIL: %d violation(s), first: %s", len(r.Violations), r.Violations[0])
}

// buildOrder implements the paper's construction (Section III-A, Steps I
// and II): scans ordered by base containment (ties by time), every update
// inserted before the first scan whose base contains it, leftover updates
// appended, gaps ordered by invocation time.
func (h *History) buildOrder() ([]*Op, error) {
	sbs, err := h.scanBases()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(sbs, func(i, j int) bool {
		si, sj := sbs[i].base.Sum(), sbs[j].base.Sum()
		if si != sj {
			return si < sj
		}
		if sbs[i].sc.Inv != sbs[j].sc.Inv {
			return sbs[i].sc.Inv < sbs[j].sc.Inv
		}
		return sbs[i].sc.ID < sbs[j].sc.ID
	})
	// Gap g holds updates placed immediately before scan g
	// (g == len(sbs) is the trailing gap).
	gaps := make([][]*Op, len(sbs)+1)
	for _, u := range h.Updates() {
		g := len(sbs)
		for i, sb := range sbs {
			if sb.base[u.Node] >= u.Seq {
				g = i
				break
			}
		}
		if u.Pending() && (g == len(sbs) || sbs[g].base[u.Node] != u.Seq) {
			// The updater crashed before responding and no scan returned
			// the written value: the operation never observably took
			// effect and the sequential equivalent omits it. A base can
			// contain the update nominally — prefix representation, when a
			// scan saw a later same-node value — without requiring it, and
			// placing it anyway would wrongly constrain a recovered node's
			// later operations (program order and the recovery fence put
			// the dead incarnation's pending update ahead of everything
			// the new incarnation does). With comparable bases (A1) the
			// first scan containing u has base[u.Node] == u.Seq exactly
			// when some scan returned u's value.
			continue
		}
		gaps[g] = append(gaps[g], u)
	}
	var out []*Op
	for g := 0; g <= len(sbs); g++ {
		us := gaps[g]
		sort.SliceStable(us, func(i, j int) bool {
			if us[i].Inv != us[j].Inv {
				return us[i].Inv < us[j].Inv
			}
			return us[i].ID < us[j].ID
		})
		out = append(out, us...)
		if g < len(sbs) {
			out = append(out, sbs[g].sc)
		}
	}
	return out, nil
}

// verifyLegal replays order against the sequential specification
// (Definition 1): every scan must return, for each segment, the value of
// the most recent preceding update (or ⊥).
func (h *History) verifyLegal(order []*Op) []string {
	cur := make([]string, h.N)
	var viol []string
	for _, op := range order {
		switch op.Type {
		case Update:
			cur[op.Node] = op.Arg
		case Scan:
			for i := 0; i < h.N; i++ {
				if op.Snap[i] != cur[i] {
					viol = append(viol, fmt.Sprintf("illegal: %v segment %d is %q, sequential spec requires %q", op, i, op.Snap[i], cur[i]))
				}
			}
		}
	}
	return viol
}

// verifyRealTime checks that order preserves →: if op1 → op2 in H then op1
// is placed before op2.
func verifyRealTime(order []*Op) []string {
	pos := make(map[int]int, len(order))
	for i, op := range order {
		pos[op.ID] = i
	}
	var viol []string
	for _, a := range order {
		for _, b := range order {
			if a.Before(b) && pos[a.ID] >= pos[b.ID] {
				viol = append(viol, fmt.Sprintf("real-time order violated: %v → %v but placed after", a, b))
			}
		}
	}
	return viol
}

// verifyRecoveryFence checks that every pending update in order is placed
// before all later operations of its node. Recovery replays a crashed
// incarnation's durable write before the restarted node issues new
// operations, so a pending update takes effect, if ever, before the
// node's next operation begins — a write surfacing only after the new
// incarnation's operations has no execution producing it. (For completed
// operations real-time order subsumes this; sequential consistency's
// per-node order check subsumes it entirely.)
func verifyRecoveryFence(order []*Op) []string {
	var viol []string
	for i, u := range order {
		if u.Type != Update || !u.Pending() {
			continue
		}
		for _, op := range order[:i] {
			if op.Node == u.Node && (op.Inv > u.Inv || (op.Inv == u.Inv && op.ID > u.ID)) {
				viol = append(viol, fmt.Sprintf("recovery fence violated: %v placed before %v", op, u))
			}
		}
	}
	return viol
}

// verifyPerNodeOrder checks S ≃ H: restricted to each node, order must be
// the node's program order.
func (h *History) verifyPerNodeOrder(order []*Op) []string {
	var viol []string
	lastInv := make(map[int]*Op, h.N)
	for _, op := range order {
		if prev := lastInv[op.Node]; prev != nil && (prev.Inv > op.Inv || (prev.Inv == op.Inv && prev.ID > op.ID)) {
			viol = append(viol, fmt.Sprintf("program order violated at node %d: %v placed before %v", op.Node, prev, op))
		}
		lastInv[op.Node] = op
	}
	return viol
}

// verifyComplete checks that order contains every completed operation of
// the history exactly once and nothing else, except that pending
// operations are optional: a pending scan has no observable effect and is
// dropped, and a pending update (the node crashed mid-op) may or may not
// have taken effect — if its value was observed the legality check forces
// it into the order, otherwise the order may omit it.
func (h *History) verifyComplete(order []*Op) []string {
	required := make(map[int]bool)
	optional := make(map[int]bool)
	for _, op := range h.Ops {
		switch {
		case !op.Pending():
			required[op.ID] = true
		case op.Type == Update:
			optional[op.ID] = true
		}
	}
	var viol []string
	for _, op := range order {
		if !required[op.ID] && !optional[op.ID] {
			viol = append(viol, fmt.Sprintf("unexpected op in order: %v", op))
		}
		delete(required, op.ID)
		delete(optional, op.ID)
	}
	for id := range required {
		viol = append(viol, fmt.Sprintf("op%d missing from order", id))
	}
	return viol
}

// CheckLinearizable verifies the history is linearizable (Definition 3):
// it checks the tight conditions (A1)-(A4), constructs the linearization of
// Theorem 1's proof, and independently verifies that the construction is a
// legal sequential history equivalent to H that preserves real-time order.
func (h *History) CheckLinearizable() *Report {
	rep := &Report{}
	if err := h.ValidateValues(); err != nil {
		rep.Violations = append(rep.Violations, err.Error())
		return rep
	}
	rep.Violations = append(rep.Violations, h.CheckConditions()...)
	order, err := h.buildOrder()
	if err != nil {
		rep.Violations = append(rep.Violations, err.Error())
		return rep
	}
	rep.Violations = append(rep.Violations, h.verifyComplete(order)...)
	rep.Violations = append(rep.Violations, h.verifyLegal(order)...)
	rep.Violations = append(rep.Violations, verifyRealTime(order)...)
	rep.Violations = append(rep.Violations, verifyRecoveryFence(order)...)
	rep.Order = order
	rep.OK = len(rep.Violations) == 0
	return rep
}

// CheckSequentiallyConsistent verifies the history is sequentially
// consistent (Definition 2): bases must be comparable and respect each
// node's program order; the constructed sequentialization is then verified
// to be legal and equivalent to H (per-node order preserved, real-time
// order NOT required).
func (h *History) CheckSequentiallyConsistent() *Report {
	rep := &Report{}
	if err := h.ValidateValues(); err != nil {
		rep.Violations = append(rep.Violations, err.Error())
		return rep
	}
	rep.Violations = append(rep.Violations, h.CheckA1()...)
	rep.Violations = append(rep.Violations, h.CheckS2()...)
	rep.Violations = append(rep.Violations, h.CheckS3()...)
	order, err := h.buildSCOrder()
	if err != nil {
		rep.Violations = append(rep.Violations, err.Error())
		return rep
	}
	rep.Violations = append(rep.Violations, h.verifyComplete(order)...)
	rep.Violations = append(rep.Violations, h.verifyLegal(order)...)
	rep.Violations = append(rep.Violations, h.verifyPerNodeOrder(order)...)
	rep.Order = order
	rep.OK = len(rep.Violations) == 0
	return rep
}

// buildSCOrder constructs a sequentialization: like buildOrder, but gap
// updates are ordered to respect each node's program order relative to its
// own scans (which conditions S2/S3 make possible).
func (h *History) buildSCOrder() ([]*Op, error) {
	// The linearization construction already orders same-node updates by
	// program order and places them against scans per base containment;
	// with S2 ensuring a scan's base has exactly the node's own preceding
	// updates, the same construction yields a valid sequentialization.
	return h.buildOrder()
}
