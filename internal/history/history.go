// Package history records executions of a snapshot object and checks them
// against the paper's correctness conditions.
//
// A history is the partially ordered set of UPDATE and SCAN operations of
// one execution (Section II-B). The package computes the base of every SCAN
// (Definition 4), checks the tight conditions (A1)-(A4) of Theorem 1,
// constructs a linearization following the paper's Steps I-II, and verifies
// the result independently against the sequential specification
// (Definition 1). It also checks sequential consistency (Definition 2) for
// SSO histories.
package history

import (
	"fmt"
	"sort"
	"sync"

	"mpsnap/internal/rt"
)

// OpType distinguishes UPDATE and SCAN operations.
type OpType int

// Operation types.
const (
	Update OpType = iota
	Scan
)

func (t OpType) String() string {
	if t == Update {
		return "UPDATE"
	}
	return "SCAN"
}

// NoValue is the representation of the initial ⊥ segment value in scans.
const NoValue = ""

// Op is one operation of a history.
type Op struct {
	// ID is unique within the history (assigned in begin order).
	ID int
	// Node is the invoking node.
	Node int
	// Client distinguishes concurrent clients multiplexed onto the same
	// node (0 when the node has a single client). The consistency
	// conditions never read it; the online monitor uses it for the
	// self-inclusion check, which is a per-client program-order property.
	Client int
	// Type is Update or Scan.
	Type OpType
	// Seq is, for updates, the 1-based position among the node's updates
	// in program order.
	Seq int
	// Arg is, for updates, the written value. Values must be unique per
	// node (the paper's uniqueness assumption, Section III-A).
	Arg string
	// Snap is, for completed scans, the returned vector; Snap[i] is the
	// value of segment i or NoValue for ⊥.
	Snap []string
	// Inv and Resp are invocation/response times. Resp < 0 marks a
	// pending operation (the node crashed before responding).
	Inv, Resp rt.Ticks
}

// Pending reports whether the operation never responded.
func (o *Op) Pending() bool { return o.Resp < 0 }

// Before reports the paper's real-time order op → other:
// resp(op) occurs before inv(other). Pending operations precede nothing.
func (o *Op) Before(other *Op) bool {
	return !o.Pending() && o.Resp < other.Inv
}

func (o *Op) String() string {
	switch {
	case o.Type == Update:
		return fmt.Sprintf("op%d UPDATE(%s)@%d [%d,%d]", o.ID, o.Arg, o.Node, o.Inv, o.Resp)
	case o.Pending():
		return fmt.Sprintf("op%d SCAN@%d [%d,pending]", o.ID, o.Node, o.Inv)
	default:
		return fmt.Sprintf("op%d SCAN->%v@%d [%d,%d]", o.ID, o.Snap, o.Node, o.Inv, o.Resp)
	}
}

// History is a finished execution.
type History struct {
	// N is the number of nodes (segments).
	N int
	// Ops holds all operations, sorted by invocation time (ID breaks
	// ties deterministically).
	Ops []*Op

	updatesByNode [][]*Op // program order per node
}

// Recorder collects operations concurrently during an execution.
type Recorder struct {
	mu      sync.Mutex
	n       int
	nextID  int
	ops     []*Op
	nextSeq []int
	sink    Sink
}

// Sink observes operations as the recorder sees them, in recorder order
// (both callbacks fire under the recorder mutex, so a Sink needs no
// locking of its own and, on the deterministic simulator, sees a
// deterministic stream). The Op is a copy: sinks may retain it but
// mutations do not reach the history. Completion callbacks carry the
// final Resp (and Snap for scans); OpBegan fires with Resp == -1.
//
// This is the streaming hook the online monitor attaches to — the
// recorder keeps the full history for the offline checker, the sink sees
// each operation exactly twice (begin, complete) with no buffering
// between them.
type Sink interface {
	OpBegan(op Op)
	OpCompleted(op Op)
}

// NewRecorder creates a recorder for an n-node object.
func NewRecorder(n int) *Recorder {
	return &Recorder{n: n, nextSeq: make([]int, n)}
}

// SetSink attaches a streaming observer (nil detaches). Attach before
// operations begin; the sink does not replay the past.
func (r *Recorder) SetSink(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
}

// PendingOp is a begun-but-unfinished operation.
type PendingOp struct {
	r  *Recorder
	op *Op
}

// BeginUpdate records the invocation of UPDATE(arg) at node.
func (r *Recorder) BeginUpdate(node int, arg string, at rt.Ticks) *PendingOp {
	return r.BeginUpdateAs(node, 0, arg, at)
}

// BeginUpdateAs is BeginUpdate for a specific client of the node.
func (r *Recorder) BeginUpdateAs(node, client int, arg string, at rt.Ticks) *PendingOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSeq[node]++
	op := &Op{ID: r.nextID, Node: node, Client: client, Type: Update, Seq: r.nextSeq[node], Arg: arg, Inv: at, Resp: -1}
	r.nextID++
	r.ops = append(r.ops, op)
	if r.sink != nil {
		r.sink.OpBegan(*op)
	}
	return &PendingOp{r: r, op: op}
}

// BeginScan records the invocation of a SCAN at node.
func (r *Recorder) BeginScan(node int, at rt.Ticks) *PendingOp {
	return r.BeginScanAs(node, 0, at)
}

// BeginScanAs is BeginScan for a specific client of the node.
func (r *Recorder) BeginScanAs(node, client int, at rt.Ticks) *PendingOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := &Op{ID: r.nextID, Node: node, Client: client, Type: Scan, Inv: at, Resp: -1}
	r.nextID++
	r.ops = append(r.ops, op)
	if r.sink != nil {
		r.sink.OpBegan(*op)
	}
	return &PendingOp{r: r, op: op}
}

// End records the response of an update.
func (p *PendingOp) End(at rt.Ticks) {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	p.op.Resp = at
	if p.r.sink != nil {
		p.r.sink.OpCompleted(*p.op)
	}
}

// EndScan records the response of a scan with the returned vector.
func (p *PendingOp) EndScan(snap []string, at rt.Ticks) {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	p.op.Snap = append([]string(nil), snap...)
	p.op.Resp = at
	if p.r.sink != nil {
		p.r.sink.OpCompleted(*p.op)
	}
}

// History finalizes and returns the recorded history.
func (r *Recorder) History() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := append([]*Op(nil), r.ops...)
	return NewHistory(r.n, ops)
}

// NewHistory builds a History from operations (used directly by tests).
// Update Seq fields are recomputed from per-node invocation order if zero.
func NewHistory(n int, ops []*Op) *History {
	h := &History{N: n, Ops: ops}
	sort.SliceStable(h.Ops, func(i, j int) bool {
		if h.Ops[i].Inv != h.Ops[j].Inv {
			return h.Ops[i].Inv < h.Ops[j].Inv
		}
		return h.Ops[i].ID < h.Ops[j].ID
	})
	h.updatesByNode = make([][]*Op, n)
	for _, op := range h.Ops {
		if op.Type == Update {
			h.updatesByNode[op.Node] = append(h.updatesByNode[op.Node], op)
		}
	}
	for _, ups := range h.updatesByNode {
		for i, u := range ups {
			if u.Seq == 0 {
				u.Seq = i + 1
			}
		}
	}
	return h
}

// UpdatesByNode returns node's updates in program order.
func (h *History) UpdatesByNode(node int) []*Op { return h.updatesByNode[node] }

// Scans returns all completed scans in invocation order.
func (h *History) Scans() []*Op {
	var out []*Op
	for _, op := range h.Ops {
		if op.Type == Scan && !op.Pending() {
			out = append(out, op)
		}
	}
	return out
}

// Updates returns all updates (including pending ones) in invocation order.
func (h *History) Updates() []*Op {
	var out []*Op
	for _, op := range h.Ops {
		if op.Type == Update {
			out = append(out, op)
		}
	}
	return out
}

// Base is the base of a SCAN (Definition 4) in compact form: Base[i] is the
// number of node-i updates included. Because a base always contains a
// program-order prefix of each node's updates, this vector determines the
// operation set exactly.
type Base []int

// LE reports pointwise b ≤ o, i.e. base containment B_b ⊆ B_o.
func (b Base) LE(o Base) bool {
	for i := range b {
		if b[i] > o[i] {
			return false
		}
	}
	return true
}

// Equal reports b == o.
func (b Base) Equal(o Base) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Comparable reports Definition 5: b ⊆ o or o ⊆ b.
func (b Base) Comparable(o Base) bool { return b.LE(o) || o.LE(b) }

// Sum returns the number of updates in the base.
func (b Base) Sum() int {
	s := 0
	for _, v := range b {
		s += v
	}
	return s
}

func (b Base) String() string { return fmt.Sprint([]int(b)) }

// BaseOf computes the base of a completed scan. It fails if the scan
// returned a value no update wrote (an immediate legality violation).
func (h *History) BaseOf(sc *Op) (Base, error) {
	if sc.Type != Scan || sc.Pending() {
		return nil, fmt.Errorf("history: BaseOf on %v", sc)
	}
	if len(sc.Snap) != h.N {
		return nil, fmt.Errorf("history: %v returned %d segments, want %d", sc, len(sc.Snap), h.N)
	}
	base := make(Base, h.N)
	for i := 0; i < h.N; i++ {
		v := sc.Snap[i]
		if v == NoValue {
			continue
		}
		found := false
		for _, u := range h.updatesByNode[i] {
			if u.Arg == v {
				base[i] = u.Seq
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("history: %v returned %q for segment %d, which no update wrote", sc, v, i)
		}
	}
	return base, nil
}

// ValidateValues verifies the paper's uniqueness assumption: every node's
// update values are distinct.
func (h *History) ValidateValues() error {
	for node, ups := range h.updatesByNode {
		seen := make(map[string]bool, len(ups))
		for _, u := range ups {
			if seen[u.Arg] {
				return fmt.Errorf("history: node %d wrote value %q twice", node, u.Arg)
			}
			seen[u.Arg] = true
		}
	}
	return nil
}
