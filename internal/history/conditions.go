package history

import (
	"fmt"
	"sort"
)

// scanBases pairs every completed scan with its base, with deterministic
// order (invocation time, then ID).
type scanBase struct {
	sc   *Op
	base Base
}

func (h *History) scanBases() ([]scanBase, error) {
	var out []scanBase
	for _, sc := range h.Scans() {
		b, err := h.BaseOf(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, scanBase{sc: sc, base: b})
	}
	return out, nil
}

// precCounts[j] = number of node-j updates u' with u' → op (resp before
// op's invocation).
func (h *History) precCounts(op *Op) Base {
	out := make(Base, h.N)
	for j := 0; j < h.N; j++ {
		for _, u := range h.updatesByNode[j] {
			if u.Before(op) {
				out[j] = u.Seq // program-order prefix: last preceding seq
			}
		}
	}
	return out
}

// CheckA1 verifies condition (A1): the bases of any pair of SCAN operations
// are comparable. It returns the violations found (empty means pass).
func (h *History) CheckA1() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	// All pairs are comparable iff the multiset of bases forms a chain.
	// Sorting by total size and checking adjacent pairs suffices:
	// containment implies size order, and ⊆ is transitive.
	sorted := append([]scanBase(nil), sbs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].base.Sum() < sorted[j].base.Sum() })
	var viol []string
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		if !a.base.LE(b.base) {
			viol = append(viol, fmt.Sprintf("(A1) incomparable bases: %v base=%v vs %v base=%v", a.sc, a.base, b.sc, b.base))
		}
	}
	return viol
}

// CheckA2 verifies condition (A2): the base of a SCAN contains every UPDATE
// that precedes it in real time.
func (h *History) CheckA2() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var viol []string
	for _, sb := range sbs {
		need := h.precCounts(sb.sc)
		if !need.LE(sb.base) {
			viol = append(viol, fmt.Sprintf("(A2) %v base=%v misses preceding updates (needs ≥ %v)", sb.sc, sb.base, need))
		}
	}
	return viol
}

// CheckA3 verifies condition (A3): sc1 → sc2 implies base(sc1) ⊆ base(sc2).
func (h *History) CheckA3() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var viol []string
	for i := range sbs {
		for j := range sbs {
			if i == j || !sbs[i].sc.Before(sbs[j].sc) {
				continue
			}
			if !sbs[i].base.LE(sbs[j].base) {
				viol = append(viol, fmt.Sprintf("(A3) %v → %v but base %v ⊄ %v", sbs[i].sc, sbs[j].sc, sbs[i].base, sbs[j].base))
			}
		}
	}
	return viol
}

// CheckA4 verifies condition (A4): if an UPDATE op is in the base of a SCAN,
// every UPDATE preceding op in real time is in that base too. Since bases
// are per-writer prefixes, it suffices to check the last included update of
// each writer.
func (h *History) CheckA4() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var viol []string
	for _, sb := range sbs {
		for i := 0; i < h.N; i++ {
			if sb.base[i] == 0 {
				continue
			}
			last := h.updatesByNode[i][sb.base[i]-1]
			need := h.precCounts(last)
			if !need.LE(sb.base) {
				viol = append(viol, fmt.Sprintf("(A4) %v base=%v contains %v but misses its predecessors (needs ≥ %v)", sb.sc, sb.base, last, need))
			}
		}
	}
	return viol
}

// CheckConditions runs (A1)-(A4) (Theorem 1's right-hand side).
func (h *History) CheckConditions() []string {
	var viol []string
	viol = append(viol, h.CheckA1()...)
	viol = append(viol, h.CheckA2()...)
	viol = append(viol, h.CheckA3()...)
	viol = append(viol, h.CheckA4()...)
	return viol
}

// Sequential-consistency conditions for SSO (reconstructed from the
// technical report's outline; the construction below is verified
// independently, see CheckSequentiallyConsistent):
//
//	(S1) bases of any pair of scans are comparable (same as A1);
//	(S2) the base of a scan contains exactly the scanning node's own
//	     preceding updates on its own segment (no fewer — program order;
//	     no more — the scan must not see the node's own future);
//	(S3) scans of the same node have nondecreasing bases in program order.
//
// Per-writer prefix closure (the SC analogue of A4) holds by construction
// of the Base representation.

// CheckS2 verifies condition (S2).
func (h *History) CheckS2() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var viol []string
	for _, sb := range sbs {
		lo, hi := 0, 0
		for _, u := range h.updatesByNode[sb.sc.Node] {
			// "Preceding" is the node's program order. With concurrent
			// service-layer clients an update and a scan of the same node
			// can share an invocation tick; the recorder assigns IDs in
			// begin order, so (Inv, ID) is exactly that program order —
			// for single-client histories the ID tie-break never fires.
			if u.Inv < sb.sc.Inv || (u.Inv == sb.sc.Inv && u.ID < sb.sc.ID) {
				hi = u.Seq
				if !u.Pending() {
					lo = u.Seq
				}
			}
		}
		// Every completed own update must be visible (no fewer) and the
		// node's own future must not be (no more). A pending own update —
		// the node crashed mid-op, possibly recovering later — may or may
		// not have taken effect, so it widens the requirement to a range;
		// without pending own updates lo == hi and the check is exact.
		if b := sb.base[sb.sc.Node]; b < lo || b > hi {
			if lo == hi {
				viol = append(viol, fmt.Sprintf("(S2) %v sees %d own updates, program order requires exactly %d", sb.sc, b, lo))
			} else {
				viol = append(viol, fmt.Sprintf("(S2) %v sees %d own updates, program order requires %d..%d (a crashed update may not have taken effect)", sb.sc, b, lo, hi))
			}
		}
	}
	return viol
}

// CheckS3 verifies condition (S3).
func (h *History) CheckS3() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var viol []string
	byNode := make(map[int][]scanBase)
	for _, sb := range sbs {
		byNode[sb.sc.Node] = append(byNode[sb.sc.Node], sb)
	}
	for _, list := range byNode {
		for i := 1; i < len(list); i++ {
			if !list[i-1].base.LE(list[i].base) {
				viol = append(viol, fmt.Sprintf("(S3) same-node scans regress: %v base=%v then %v base=%v",
					list[i-1].sc, list[i-1].base, list[i].sc, list[i].base))
			}
		}
	}
	return viol
}
