package history

import (
	"fmt"
	"sort"

	"mpsnap/internal/rt"
)

// scanBases pairs every completed scan with its base, with deterministic
// order (invocation time, then ID).
type scanBase struct {
	sc   *Op
	base Base
}

func (h *History) scanBases() ([]scanBase, error) {
	var out []scanBase
	for _, sc := range h.Scans() {
		b, err := h.BaseOf(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, scanBase{sc: sc, base: b})
	}
	return out, nil
}

// precAt[j] = number of node-j updates u' completed strictly before t,
// computed from the shared per-writer Completions index (cond.go). This is
// exactly the requirement set (A2) and (A4) impose at an invocation time.
func precAt(idx []*Completions, t rt.Ticks) Base {
	out := make(Base, len(idx))
	for j := range idx {
		out[j] = idx[j].Before(t)
	}
	return out
}

// CheckA1 verifies condition (A1): the bases of any pair of SCAN operations
// are comparable. It returns the violations found (empty means pass).
// All pairs are comparable iff the multiset of bases forms a chain; the
// shared Chain (cond.go) maintains that incrementally, so the offline
// check is a fold over the scans in invocation order — the same fold the
// monitor runs online.
func (h *History) CheckA1() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var chain Chain
	var viol []string
	for _, sb := range sbs {
		if conflict, ok := chain.Insert(sb.base); !ok {
			viol = append(viol, fmt.Sprintf("(A1) incomparable bases: %v base=%v vs earlier base=%v", sb.sc, sb.base, conflict))
		}
	}
	return viol
}

// CheckA2 verifies condition (A2): the base of a SCAN contains every UPDATE
// that precedes it in real time.
func (h *History) CheckA2() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	idx := h.completionIndex()
	var viol []string
	for _, sb := range sbs {
		need := precAt(idx, sb.sc.Inv)
		if !need.LE(sb.base) {
			viol = append(viol, fmt.Sprintf("(A2) %v base=%v misses preceding updates (needs ≥ %v)", sb.sc, sb.base, need))
		}
	}
	return viol
}

// CheckA3 verifies condition (A3): sc1 → sc2 implies base(sc1) ⊆ base(sc2).
// The shared Frontier (cond.go) carries the pointwise max of bases of scans
// completed so far; a scan's base must dominate the frontier strictly
// before its invocation — equivalent to the pairwise formulation because
// ⊆ against a pointwise max is ⊆ against every contributor.
func (h *History) CheckA3() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	// Feed scans in response order so the frontier staircase is exact
	// (no forward clamping); query strictly before each invocation.
	byResp := append([]scanBase(nil), sbs...)
	sort.SliceStable(byResp, func(i, j int) bool { return byResp[i].sc.Resp < byResp[j].sc.Resp })
	var fr Frontier
	var viol []string
	for _, sb := range byResp {
		if req := fr.At(sb.sc.Inv); req != nil && !req.LE(sb.base) {
			viol = append(viol, fmt.Sprintf("(A3) %v base=%v regresses below the frontier %v of scans completed before it", sb.sc, sb.base, req))
		}
		fr.Add(sb.sc.Resp, sb.base)
	}
	return viol
}

// CheckA4 verifies condition (A4): if an UPDATE op is in the base of a SCAN,
// every UPDATE preceding op in real time is in that base too. Since bases
// are per-writer prefixes, it suffices to check the last included update of
// each writer.
func (h *History) CheckA4() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	idx := h.completionIndex()
	var viol []string
	for _, sb := range sbs {
		for i := 0; i < h.N; i++ {
			if sb.base[i] == 0 {
				continue
			}
			last := h.updatesByNode[i][sb.base[i]-1]
			need := precAt(idx, last.Inv)
			if !need.LE(sb.base) {
				viol = append(viol, fmt.Sprintf("(A4) %v base=%v contains %v but misses its predecessors (needs ≥ %v)", sb.sc, sb.base, last, need))
			}
		}
	}
	return viol
}

// CheckConditions runs (A1)-(A4) (Theorem 1's right-hand side).
func (h *History) CheckConditions() []string {
	var viol []string
	viol = append(viol, h.CheckA1()...)
	viol = append(viol, h.CheckA2()...)
	viol = append(viol, h.CheckA3()...)
	viol = append(viol, h.CheckA4()...)
	return viol
}

// Sequential-consistency conditions for SSO (reconstructed from the
// technical report's outline; the construction below is verified
// independently, see CheckSequentiallyConsistent):
//
//	(S1) bases of any pair of scans are comparable (same as A1);
//	(S2) the base of a scan contains exactly the scanning node's own
//	     preceding updates on its own segment (no fewer — program order;
//	     no more — the scan must not see the node's own future);
//	(S3) scans of the same node have nondecreasing bases in program order.
//
// Per-writer prefix closure (the SC analogue of A4) holds by construction
// of the Base representation.

// CheckS2 verifies condition (S2).
func (h *History) CheckS2() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var viol []string
	for _, sb := range sbs {
		lo, hi := 0, 0
		for _, u := range h.updatesByNode[sb.sc.Node] {
			// "Preceding" is the node's program order. With concurrent
			// service-layer clients an update and a scan of the same node
			// can share an invocation tick; the recorder assigns IDs in
			// begin order, so (Inv, ID) is exactly that program order —
			// for single-client histories the ID tie-break never fires.
			if u.Inv < sb.sc.Inv || (u.Inv == sb.sc.Inv && u.ID < sb.sc.ID) {
				hi = u.Seq
				if !u.Pending() {
					lo = u.Seq
				}
			}
		}
		// Every completed own update must be visible (no fewer) and the
		// node's own future must not be (no more). A pending own update —
		// the node crashed mid-op, possibly recovering later — may or may
		// not have taken effect, so it widens the requirement to a range;
		// without pending own updates lo == hi and the check is exact.
		if b := sb.base[sb.sc.Node]; b < lo || b > hi {
			if lo == hi {
				viol = append(viol, fmt.Sprintf("(S2) %v sees %d own updates, program order requires exactly %d", sb.sc, b, lo))
			} else {
				viol = append(viol, fmt.Sprintf("(S2) %v sees %d own updates, program order requires %d..%d (a crashed update may not have taken effect)", sb.sc, b, lo, hi))
			}
		}
	}
	return viol
}

// CheckS3 verifies condition (S3).
func (h *History) CheckS3() []string {
	sbs, err := h.scanBases()
	if err != nil {
		return []string{err.Error()}
	}
	var viol []string
	byNode := make(map[int][]scanBase)
	for _, sb := range sbs {
		byNode[sb.sc.Node] = append(byNode[sb.sc.Node], sb)
	}
	for _, list := range byNode {
		for i := 1; i < len(list); i++ {
			if !list[i-1].base.LE(list[i].base) {
				viol = append(viol, fmt.Sprintf("(S3) same-node scans regress: %v base=%v then %v base=%v",
					list[i-1].sc, list[i-1].base, list[i].sc, list[i].base))
			}
		}
	}
	return viol
}
