package history

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := NewHistory(2, []*Op{
		upd(1, 0, "a", 0, 10),
		scn(2, 1, []string{"a", ""}, 20, 30),
		upd(3, 1, "b", 40, -1),                          // pending
		{ID: 4, Node: 0, Type: Scan, Inv: 50, Resp: -1}, // pending scan
	})
	var buf bytes.Buffer
	if err := orig.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || len(got.Ops) != 4 {
		t.Fatalf("n=%d ops=%d", got.N, len(got.Ops))
	}
	for i := range orig.Ops {
		a, b := orig.Ops[i], got.Ops[i]
		if a.ID != b.ID || a.Node != b.Node || a.Type != b.Type || a.Arg != b.Arg ||
			a.Inv != b.Inv || a.Resp != b.Resp {
			t.Fatalf("op %d mismatch: %v vs %v", i, a, b)
		}
	}
	// The reloaded history must check identically.
	if orig.CheckLinearizable().OK != got.CheckLinearizable().OK {
		t.Fatal("verdict changed across serialization")
	}
}

func TestLoadJSONValidation(t *testing.T) {
	cases := map[string]string{
		"bad node count": `{"n":0,"ops":[]}`,
		"node range":     `{"n":2,"ops":[{"id":1,"node":5,"type":"update","arg":"a","inv":0,"resp":1}]}`,
		"unknown type":   `{"n":2,"ops":[{"id":1,"node":0,"type":"cas","inv":0,"resp":1}]}`,
		"wrong segments": `{"n":2,"ops":[{"id":1,"node":0,"type":"scan","snap":["a"],"inv":0,"resp":1}]}`,
		"resp<inv":       `{"n":2,"ops":[{"id":1,"node":0,"type":"update","arg":"a","inv":5,"resp":1}]}`,
		"unknown field":  `{"n":2,"bogus":1,"ops":[]}`,
		"not json":       `nope`,
	}
	for name, payload := range cases {
		if _, err := LoadJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted %q", name, payload)
		}
	}
}

func TestLoadJSONHandAuthored(t *testing.T) {
	// The documented format is hand-authorable: users can check their own
	// deployments' histories.
	payload := `{
	  "n": 2,
	  "ops": [
	    {"id": 1, "node": 0, "type": "update", "arg": "x", "inv": 0, "resp": 10},
	    {"id": 2, "node": 1, "type": "scan", "snap": ["x", ""], "inv": 20, "resp": 25}
	  ]
	}`
	h, err := LoadJSON(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if rep := h.CheckLinearizable(); !rep.OK {
		t.Fatalf("hand-authored history should pass: %v", rep.Violations)
	}
}
