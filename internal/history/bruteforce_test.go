package history

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap/internal/rt"
)

// splitOps separates a history's operations into the completed ones
// (always present in a linearization or sequentialization) and the
// pending updates (which took effect or not); pending scans have no
// observable effect and are dropped.
func splitOps(h *History) (completed, pend []*Op) {
	for _, op := range h.Ops {
		switch {
		case !op.Pending():
			completed = append(completed, op)
		case op.Type == Update:
			pend = append(pend, op)
		}
	}
	return completed, pend
}

// permSearch reports whether some permutation of ops that respects
// mustPrecede is legal.
func permSearch(h *History, ops []*Op, mustPrecede func(prev, op *Op) bool) bool {
	n := len(ops)
	if n > 8 {
		panic("permSearch: history too large")
	}
	used := make([]bool, n)
	order := make([]*Op, 0, n)
	var try func() bool
	try = func() bool {
		if len(order) == n {
			return len(h.verifyLegal(order)) == 0
		}
		for i, op := range ops {
			if used[i] {
				continue
			}
			// op may come next only if everything that must precede it is
			// already placed.
			ok := true
			for j, prev := range ops {
				if !used[j] && i != j && mustPrecede(prev, op) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			order = append(order, op)
			if try() {
				used[i] = false
				order = order[:len(order)-1]
				return true
			}
			used[i] = false
			order = order[:len(order)-1]
		}
		return false
	}
	return try()
}

// forEffectSubsets runs search over the completed operations joined with
// every subset of pending updates — a crashed update either takes effect
// (and must then be ordered) or never does (and is absent).
func forEffectSubsets(h *History, search func(ops []*Op) bool) bool {
	completed, pend := splitOps(h)
	for mask := 0; mask < 1<<len(pend); mask++ {
		ops := append([]*Op(nil), completed...)
		for i, u := range pend {
			if mask&(1<<i) != 0 {
				ops = append(ops, u)
			}
		}
		if search(ops) {
			return true
		}
	}
	return false
}

// programOrderBefore reports prev < op in the same node's program order.
func programOrderBefore(prev, op *Op) bool {
	return prev.Node == op.Node &&
		(prev.Inv < op.Inv || (prev.Inv == op.Inv && prev.ID < op.ID))
}

// bruteForceLinearizable decides linearizability of a small history by
// enumerating, for every subset of pending updates that took effect,
// every permutation that respects the real-time order — plus the
// recovery fence: an included pending update must precede every later
// same-node operation, because recovery replays the crashed
// incarnation's durable write before the restarted node issues anything
// new (real time alone never forces a pending op early, but a write that
// surfaced only after the new incarnation's operations would have no
// execution producing it). It is the ground truth the conditions-based
// checker is validated against (Theorem 1: both directions).
func bruteForceLinearizable(h *History) bool {
	return forEffectSubsets(h, func(ops []*Op) bool {
		return permSearch(h, ops, func(prev, op *Op) bool {
			return prev.Before(op) ||
				(prev.Pending() && prev.Type == Update && programOrderBefore(prev, op))
		})
	})
}

// bruteForceSequentiallyConsistent does the same for sequential
// consistency: permutations respect each node's program order (but not
// real time), which already subsumes the recovery fence. An ineffective
// pending update cannot just ride in the trailing gap here: when the
// crashed node recovers and issues more operations, program order would
// force the dead incarnation's pending update ahead of them, so "never
// took effect" is modelled by leaving the op out.
func bruteForceSequentiallyConsistent(h *History) bool {
	return forEffectSubsets(h, func(ops []*Op) bool {
		return permSearch(h, ops, programOrderBefore)
	})
}

// genSmallHistory produces a random small history of completed operations:
// with probability ~1/2 it comes from a genuinely atomic execution
// (linearization points), otherwise scan results are randomly corrupted.
func genSmallHistory(rng *rand.Rand) *History {
	n := 2 + rng.Intn(2)
	nOps := 3 + rng.Intn(5) // ≤ 7
	type iv struct {
		node    int
		scan    bool
		inv, pt rt.Ticks
		resp    rt.Ticks
		val     string
	}
	busy := make([]rt.Ticks, n)
	ivs := make([]iv, 0, nOps)
	for i := 0; i < nOps; i++ {
		node := rng.Intn(n)
		inv := busy[node] + rt.Ticks(rng.Intn(4))
		dur := rt.Ticks(1 + rng.Intn(8))
		resp := inv + dur
		busy[node] = resp + 1
		ivs = append(ivs, iv{
			node: node,
			scan: rng.Intn(2) == 0,
			inv:  inv,
			pt:   inv + rt.Ticks(rng.Int63n(int64(dur))),
			resp: resp,
			val:  fmt.Sprintf("v%d-%d", node, i),
		})
	}
	// Apply in linearization-point order to derive atomic scan results.
	idx := make([]int, len(ivs))
	for i := range idx {
		idx[i] = i
	}
	for i := range idx {
		for j := i + 1; j < len(idx); j++ {
			if ivs[idx[j]].pt < ivs[idx[i]].pt {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	cur := make([]string, n)
	snaps := make(map[int][]string, len(ivs))
	for _, id := range idx {
		if ivs[id].scan {
			snaps[id] = append([]string(nil), cur...)
		} else {
			cur[ivs[id].node] = ivs[id].val
		}
	}
	corrupt := rng.Intn(2) == 0
	ops := make([]*Op, 0, len(ivs))
	for i, v := range ivs {
		if v.scan {
			snap := snaps[i]
			if corrupt && rng.Intn(2) == 0 {
				// Replace one segment with a random (possibly wrong)
				// value written by that segment's owner or ⊥.
				seg := rng.Intn(n)
				var candidates []string
				candidates = append(candidates, "")
				for _, w := range ivs {
					if !w.scan && w.node == seg {
						candidates = append(candidates, w.val)
					}
				}
				snap = append([]string(nil), snap...)
				snap[seg] = candidates[rng.Intn(len(candidates))]
			}
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Scan, Snap: snap, Inv: v.inv, Resp: v.resp})
		} else {
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Update, Arg: v.val, Inv: v.inv, Resp: v.resp})
		}
	}
	return NewHistory(n, ops)
}

// TestCheckerMatchesBruteForceLinearizability validates Theorem 1
// empirically: on random small histories — genuinely atomic or corrupted —
// the (A1)-(A4)+construction checker agrees exactly with exhaustive
// search.
func TestCheckerMatchesBruteForceLinearizability(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := genSmallHistory(rng)
		want := bruteForceLinearizable(h)
		got := h.CheckLinearizable().OK
		if got != want {
			t.Logf("seed %d: checker=%v brute=%v history:", seed, got, want)
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerMatchesBruteForceSequentialConsistency does the same for the
// sequential-consistency checker.
func TestCheckerMatchesBruteForceSequentialConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed + 1<<32))
		h := genSmallHistory(rng)
		want := bruteForceSequentiallyConsistent(h)
		got := h.CheckSequentiallyConsistent().OK
		if got != want {
			t.Logf("seed %d: checker=%v brute=%v history:", seed, got, want)
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
