package history

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap/internal/rt"
)

// linearizableOps selects the operations a linearization must contain:
// every update (a pending update may have taken effect, and placing it in
// the trailing gap is equivalent to removing it) and every completed
// scan; pending scans have no observable effect and are dropped — the
// same treatment the checker's verifyComplete demands.
func linearizableOps(h *History) []*Op {
	ops := make([]*Op, 0, len(h.Ops))
	for _, op := range h.Ops {
		if op.Type == Update || !op.Pending() {
			ops = append(ops, op)
		}
	}
	return ops
}

// bruteForceLinearizable decides linearizability of a small history by
// enumerating every permutation that respects the real-time order and
// replaying it against the sequential specification. Pending updates
// (crashed updaters) are placed like any other update — real time never
// forces them early, so some permutation puts an ineffective one after
// every scan. It is the ground truth the conditions-based checker is
// validated against (Theorem 1: both directions).
func bruteForceLinearizable(h *History) bool {
	ops := linearizableOps(h)
	n := len(ops)
	if n > 8 {
		panic("bruteForceLinearizable: history too large")
	}
	used := make([]bool, n)
	order := make([]*Op, 0, n)
	var try func() bool
	try = func() bool {
		if len(order) == n {
			return len(h.verifyLegal(order)) == 0
		}
		for i, op := range ops {
			if used[i] {
				continue
			}
			// Real-time: op may come next only if every operation that
			// precedes it is already placed.
			ok := true
			for j, prev := range ops {
				if !used[j] && i != j && prev.Before(op) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Prune: replay legality incrementally would be faster;
			// for ≤8 ops full recursion is fine.
			used[i] = true
			order = append(order, op)
			if try() {
				used[i] = false
				order = order[:len(order)-1]
				return true
			}
			used[i] = false
			order = order[:len(order)-1]
		}
		return false
	}
	return try()
}

// bruteForceSequentiallyConsistent enumerates permutations that respect
// each node's program order (but not real time).
func bruteForceSequentiallyConsistent(h *History) bool {
	ops := linearizableOps(h)
	n := len(ops)
	if n > 8 {
		panic("bruteForceSequentiallyConsistent: history too large")
	}
	used := make([]bool, n)
	order := make([]*Op, 0, n)
	var try func() bool
	try = func() bool {
		if len(order) == n {
			return len(h.verifyLegal(order)) == 0
		}
		for i, op := range ops {
			if used[i] {
				continue
			}
			ok := true
			for j, prev := range ops {
				if used[j] || i == j || prev.Node != op.Node {
					continue
				}
				if prev.Inv < op.Inv || (prev.Inv == op.Inv && prev.ID < op.ID) {
					ok = false // same-node predecessor not yet placed
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			order = append(order, op)
			if try() {
				used[i] = false
				order = order[:len(order)-1]
				return true
			}
			used[i] = false
			order = order[:len(order)-1]
		}
		return false
	}
	return try()
}

// genSmallHistory produces a random small history of completed operations:
// with probability ~1/2 it comes from a genuinely atomic execution
// (linearization points), otherwise scan results are randomly corrupted.
func genSmallHistory(rng *rand.Rand) *History {
	n := 2 + rng.Intn(2)
	nOps := 3 + rng.Intn(5) // ≤ 7
	type iv struct {
		node    int
		scan    bool
		inv, pt rt.Ticks
		resp    rt.Ticks
		val     string
	}
	busy := make([]rt.Ticks, n)
	ivs := make([]iv, 0, nOps)
	for i := 0; i < nOps; i++ {
		node := rng.Intn(n)
		inv := busy[node] + rt.Ticks(rng.Intn(4))
		dur := rt.Ticks(1 + rng.Intn(8))
		resp := inv + dur
		busy[node] = resp + 1
		ivs = append(ivs, iv{
			node: node,
			scan: rng.Intn(2) == 0,
			inv:  inv,
			pt:   inv + rt.Ticks(rng.Int63n(int64(dur))),
			resp: resp,
			val:  fmt.Sprintf("v%d-%d", node, i),
		})
	}
	// Apply in linearization-point order to derive atomic scan results.
	idx := make([]int, len(ivs))
	for i := range idx {
		idx[i] = i
	}
	for i := range idx {
		for j := i + 1; j < len(idx); j++ {
			if ivs[idx[j]].pt < ivs[idx[i]].pt {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	cur := make([]string, n)
	snaps := make(map[int][]string, len(ivs))
	for _, id := range idx {
		if ivs[id].scan {
			snaps[id] = append([]string(nil), cur...)
		} else {
			cur[ivs[id].node] = ivs[id].val
		}
	}
	corrupt := rng.Intn(2) == 0
	ops := make([]*Op, 0, len(ivs))
	for i, v := range ivs {
		if v.scan {
			snap := snaps[i]
			if corrupt && rng.Intn(2) == 0 {
				// Replace one segment with a random (possibly wrong)
				// value written by that segment's owner or ⊥.
				seg := rng.Intn(n)
				var candidates []string
				candidates = append(candidates, "")
				for _, w := range ivs {
					if !w.scan && w.node == seg {
						candidates = append(candidates, w.val)
					}
				}
				snap = append([]string(nil), snap...)
				snap[seg] = candidates[rng.Intn(len(candidates))]
			}
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Scan, Snap: snap, Inv: v.inv, Resp: v.resp})
		} else {
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Update, Arg: v.val, Inv: v.inv, Resp: v.resp})
		}
	}
	return NewHistory(n, ops)
}

// TestCheckerMatchesBruteForceLinearizability validates Theorem 1
// empirically: on random small histories — genuinely atomic or corrupted —
// the (A1)-(A4)+construction checker agrees exactly with exhaustive
// search.
func TestCheckerMatchesBruteForceLinearizability(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := genSmallHistory(rng)
		want := bruteForceLinearizable(h)
		got := h.CheckLinearizable().OK
		if got != want {
			t.Logf("seed %d: checker=%v brute=%v history:", seed, got, want)
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerMatchesBruteForceSequentialConsistency does the same for the
// sequential-consistency checker.
func TestCheckerMatchesBruteForceSequentialConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed + 1<<32))
		h := genSmallHistory(rng)
		want := bruteForceSequentiallyConsistent(h)
		got := h.CheckSequentiallyConsistent().OK
		if got != want {
			t.Logf("seed %d: checker=%v brute=%v history:", seed, got, want)
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
