package history

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap/internal/rt"
)

// genSmallHistoryWithPending produces a random small history in which
// some nodes crash mid-operation: a crashed node's operation is pending
// (no response), and the node afterwards either stays down or — with
// probability 1/2 per subsequent draw — recovers and resumes issuing
// operations as a new incarnation (the shapes chaos runs record around
// partitions, crashes, and WAL-replay restarts). A pending update takes
// effect at its linearization point with probability 1/2 (a crash
// mid-broadcast may or may not have reached a quorum, and the write may
// or may not have been durably logged), so later scans — including the
// recovered incarnation's own — legitimately may or may not observe it.
// With probability ~1/2 one completed scan is then corrupted, as in
// genSmallHistory.
func genSmallHistoryWithPending(rng *rand.Rand) *History {
	n := 2 + rng.Intn(2)
	nOps := 3 + rng.Intn(5) // ≤ 7
	type iv struct {
		node        int
		scan        bool
		pending     bool
		takesEffect bool
		inv, pt     rt.Ticks
		resp        rt.Ticks
		val         string
	}
	busy := make([]rt.Ticks, n)
	crashed := make([]bool, n)
	ivs := make([]iv, 0, nOps)
	for i := 0; i < nOps; i++ {
		node := rng.Intn(n)
		if crashed[node] {
			if rng.Intn(2) == 0 {
				continue // stays down
			}
			crashed[node] = false // restarts; this op opens the new incarnation
		}
		inv := busy[node] + rt.Ticks(rng.Intn(4))
		dur := rt.Ticks(1 + rng.Intn(8))
		resp := inv + dur
		busy[node] = resp + 1
		v := iv{
			node:        node,
			scan:        rng.Intn(2) == 0,
			inv:         inv,
			pt:          inv + rt.Ticks(rng.Int63n(int64(dur))),
			resp:        resp,
			val:         fmt.Sprintf("v%d-%d", node, i),
			takesEffect: true,
		}
		// ~1/4 of ops crash their node.
		if rng.Intn(4) == 0 {
			v.pending = true
			v.takesEffect = rng.Intn(2) == 0
			crashed[node] = true
		}
		ivs = append(ivs, v)
	}
	// Apply in linearization-point order to derive atomic scan results;
	// ineffective pending updates and pending scans are skipped.
	idx := make([]int, len(ivs))
	for i := range idx {
		idx[i] = i
	}
	for i := range idx {
		for j := i + 1; j < len(idx); j++ {
			if ivs[idx[j]].pt < ivs[idx[i]].pt {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	cur := make([]string, n)
	snaps := make(map[int][]string, len(ivs))
	for _, id := range idx {
		switch {
		case ivs[id].scan:
			if !ivs[id].pending {
				snaps[id] = append([]string(nil), cur...)
			}
		case ivs[id].takesEffect:
			cur[ivs[id].node] = ivs[id].val
		}
	}
	corrupt := rng.Intn(2) == 0
	ops := make([]*Op, 0, len(ivs))
	for i, v := range ivs {
		switch {
		case v.scan && v.pending:
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Scan, Inv: v.inv, Resp: -1})
		case v.scan:
			snap := snaps[i]
			if corrupt && rng.Intn(2) == 0 {
				seg := rng.Intn(n)
				candidates := []string{NoValue}
				for _, w := range ivs {
					if !w.scan && w.node == seg {
						candidates = append(candidates, w.val)
					}
				}
				snap = append([]string(nil), snap...)
				snap[seg] = candidates[rng.Intn(len(candidates))]
			}
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Scan, Snap: snap, Inv: v.inv, Resp: v.resp})
		case v.pending:
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Update, Arg: v.val, Inv: v.inv, Resp: -1})
		default:
			ops = append(ops, &Op{ID: i, Node: v.node, Type: Update, Arg: v.val, Inv: v.inv, Resp: v.resp})
		}
	}
	return NewHistory(n, ops)
}

// TestCheckerMatchesBruteForceWithPending extends the Theorem 1
// empirical validation to histories with crashed operations: the
// conditions checker and exhaustive search must agree whether a pending
// update can be linearized somewhere (or nowhere observable) and a
// pending scan dropped.
func TestCheckerMatchesBruteForceWithPending(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed + 2<<40))
		h := genSmallHistoryWithPending(rng)
		want := bruteForceLinearizable(h)
		got := h.CheckLinearizable().OK
		if got != want {
			t.Logf("seed %d: checker=%v brute=%v history:", seed, got, want)
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCheckerMatchesBruteForceWithPending does the same for the
// sequential-consistency checker.
func TestSCCheckerMatchesBruteForceWithPending(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed + 3<<40))
		h := genSmallHistoryWithPending(rng)
		want := bruteForceSequentiallyConsistent(h)
		got := h.CheckSequentiallyConsistent().OK
		if got != want {
			t.Logf("seed %d: SC checker=%v brute=%v history:", seed, got, want)
			for _, op := range h.Ops {
				t.Logf("  %v", op)
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
