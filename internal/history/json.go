package history

import (
	"encoding/json"
	"fmt"
	"io"

	"mpsnap/internal/rt"
)

// jsonHistory is the stable on-disk representation of a history, so
// histories recorded in one process (or by a user's own deployment) can be
// checked offline by the tooling (`asosim -check file.json`).
type jsonHistory struct {
	N   int      `json:"n"`
	Ops []jsonOp `json:"ops"`
}

type jsonOp struct {
	ID     int      `json:"id"`
	Node   int      `json:"node"`
	Client int      `json:"client,omitempty"`
	Type   string   `json:"type"` // "update" | "scan"
	Arg    string   `json:"arg,omitempty"`
	Snap   []string `json:"snap,omitempty"`
	Inv    int64    `json:"inv"`
	Resp   int64    `json:"resp"` // -1 = pending
}

// DumpJSON writes the history in the stable JSON format.
func (h *History) DumpJSON(w io.Writer) error {
	out := jsonHistory{N: h.N}
	for _, op := range h.Ops {
		jo := jsonOp{
			ID:     op.ID,
			Node:   op.Node,
			Client: op.Client,
			Inv:    int64(op.Inv),
			Resp:   int64(op.Resp),
		}
		if op.Type == Update {
			jo.Type = "update"
			jo.Arg = op.Arg
		} else {
			jo.Type = "scan"
			jo.Snap = op.Snap
		}
		out.Ops = append(out.Ops, jo)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads a history written by DumpJSON (or hand-authored in the
// same format).
func LoadJSON(r io.Reader) (*History, error) {
	var in jsonHistory
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("history: decode: %w", err)
	}
	if in.N <= 0 {
		return nil, fmt.Errorf("history: invalid node count %d", in.N)
	}
	ops := make([]*Op, 0, len(in.Ops))
	for i, jo := range in.Ops {
		if jo.Node < 0 || jo.Node >= in.N {
			return nil, fmt.Errorf("history: op %d has node %d out of [0,%d)", i, jo.Node, in.N)
		}
		op := &Op{ID: jo.ID, Node: jo.Node, Client: jo.Client, Inv: rt.Ticks(jo.Inv), Resp: rt.Ticks(jo.Resp)}
		switch jo.Type {
		case "update":
			op.Type = Update
			op.Arg = jo.Arg
		case "scan":
			op.Type = Scan
			if !op.Pending() {
				if len(jo.Snap) != in.N {
					return nil, fmt.Errorf("history: op %d scan has %d segments, want %d", i, len(jo.Snap), in.N)
				}
				op.Snap = jo.Snap
			}
		default:
			return nil, fmt.Errorf("history: op %d has unknown type %q", i, jo.Type)
		}
		if !op.Pending() && op.Resp < op.Inv {
			return nil, fmt.Errorf("history: op %d responds before invocation", i)
		}
		ops = append(ops, op)
	}
	return NewHistory(in.N, ops), nil
}
