package history

import (
	"testing"
)

func TestChainInsertRemove(t *testing.T) {
	var c Chain
	if _, ok := c.Insert(Base{1, 0}); !ok {
		t.Fatal("first insert cannot conflict")
	}
	if _, ok := c.Insert(Base{1, 1}); !ok {
		t.Fatal("superset is comparable")
	}
	if _, ok := c.Insert(Base{1, 1}); !ok {
		t.Fatal("duplicate is comparable")
	}
	conflict, ok := c.Insert(Base{0, 2})
	if ok {
		t.Fatal("incomparable base must conflict")
	}
	if conflict == nil {
		t.Fatal("conflict base missing")
	}
	if c.Len() != 4 {
		t.Fatalf("chain keeps newcomers, len = %d", c.Len())
	}
	if !c.Remove(Base{1, 1}) || !c.Remove(Base{1, 1}) {
		t.Fatal("both duplicates must be removable")
	}
	if c.Remove(Base{1, 1}) {
		t.Fatal("third remove must fail")
	}
	if c.Len() != 2 {
		t.Fatalf("len after removes = %d", c.Len())
	}
}

func TestChainEqualSumIncomparable(t *testing.T) {
	var c Chain
	c.Insert(Base{2, 0})
	if _, ok := c.Insert(Base{0, 2}); ok {
		t.Fatal("equal-sum distinct bases are incomparable")
	}
}

func TestFrontierQueryAndPrune(t *testing.T) {
	var f Frontier
	if f.At(100) != nil {
		t.Fatal("empty frontier has no requirement")
	}
	f.Add(10, Base{1, 0})
	f.Add(20, Base{0, 2})
	if got := f.At(10); got != nil {
		t.Fatalf("At is strict: got %v", got)
	}
	if got := f.At(11); !got.Equal(Base{1, 0}) {
		t.Fatalf("At(11) = %v", got)
	}
	if got := f.At(21); !got.Equal(Base{1, 2}) {
		t.Fatalf("cumulative max: At(21) = %v", got)
	}
	// Out-of-order completion clamps forward: the requirement surfaces no
	// earlier than the newest known step (safe under-requirement).
	f.Add(5, Base{9, 9})
	if got := f.At(15); !got.Equal(Base{1, 0}) {
		t.Fatalf("clamped step must not raise past requirements: At(15) = %v", got)
	}
	if got := f.At(21); !got.Equal(Base{9, 9}) {
		t.Fatalf("At(21) after clamp = %v", got)
	}
	f.PruneBefore(21)
	if got := f.At(15); got != nil {
		t.Fatalf("pruned queries under-require: At(15) = %v", got)
	}
	if got := f.At(25); !got.Equal(Base{9, 9}) {
		t.Fatalf("baseline survives pruning: At(25) = %v", got)
	}
	if got := f.Floor(); !got.Equal(Base{9, 9}) {
		t.Fatalf("Floor = %v", got)
	}
}

func TestCompletionsStaircase(t *testing.T) {
	var c Completions
	if got := c.Before(5); got != 0 {
		t.Fatalf("empty Before = %d", got)
	}
	c.Add(10, 1)
	c.Add(30, 3)
	// Out-of-order lower seq adds no requirement.
	c.Add(40, 2)
	if got := c.Before(10); got != 0 {
		t.Fatalf("Before is strict: %d", got)
	}
	if got := c.Before(11); got != 1 {
		t.Fatalf("Before(11) = %d", got)
	}
	if got := c.Before(31); got != 3 {
		t.Fatalf("Before(31) = %d", got)
	}
	if got := c.Before(50); got != 3 {
		t.Fatalf("later lower seq must not regress: Before(50) = %d", got)
	}
	// Out-of-order time clamps forward: the late-arriving (20, 5) folds
	// into the newest step, so queries between the real completion and the
	// clamp point under-require (here all the way down to the first step).
	c.Add(20, 5)
	if got := c.Before(25); got != 1 {
		t.Fatalf("clamped completion must not raise past requirements: Before(25) = %d", got)
	}
	if got := c.Before(31); got != 5 {
		t.Fatalf("Before(31) after clamp = %d", got)
	}
	c.PruneBefore(31)
	if got := c.Before(10); got != 0 {
		t.Fatalf("pruned queries under-require: Before(10) = %d", got)
	}
	if got := c.Before(100); got != 5 {
		t.Fatalf("baseline survives pruning: Before(100) = %d", got)
	}
}
