package history

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mpsnap/internal/rt"
)

// mkOp builds an operation for tests.
func upd(id, node int, arg string, inv, resp rt.Ticks) *Op {
	return &Op{ID: id, Node: node, Type: Update, Arg: arg, Inv: inv, Resp: resp}
}

func scn(id, node int, snap []string, inv, resp rt.Ticks) *Op {
	return &Op{ID: id, Node: node, Type: Scan, Snap: snap, Inv: inv, Resp: resp}
}

// TestFigure1 reproduces the paper's Figure 1: a 3-node history whose
// linearization must keep op1 before op2 (real-time order), while a
// sequentialization may swap them.
func TestFigure1(t *testing.T) {
	op1 := upd(1, 0, "1", 0, 10)  // UPDATE(1) by node 1
	op2 := upd(2, 1, "2", 15, 25) // UPDATE(2) by node 2; op1 → op2
	op3 := upd(3, 2, "3", 5, 30)  // UPDATE(3) by node 3, concurrent
	op4 := scn(4, 1, []string{"1", "2", "3"}, 30, 45)
	op6 := upd(6, 0, "4", 35, 50) // UPDATE(4), node 1's second update
	op5 := scn(5, 2, []string{"4", "2", "3"}, 55, 70)
	h := NewHistory(3, []*Op{op1, op2, op3, op4, op5, op6})

	b4, err := h.BaseOf(op4)
	if err != nil {
		t.Fatal(err)
	}
	if !b4.Equal(Base{1, 1, 1}) {
		t.Fatalf("base(op4) = %v, want [1 1 1] = {U(1),U(2),U(3)}", b4)
	}
	b5, err := h.BaseOf(op5)
	if err != nil {
		t.Fatal(err)
	}
	if !b5.Equal(Base{2, 1, 1}) {
		t.Fatalf("base(op5) = %v, want [2 1 1] = {U(1),U(4),U(2),U(3)}", b5)
	}
	if !b4.Comparable(b5) || !b4.LE(b5) {
		t.Fatal("bases of op4 and op5 must be comparable with base(op4) ⊆ base(op5)")
	}

	rep := h.CheckLinearizable()
	if !rep.OK {
		t.Fatalf("Figure 1 history must be linearizable: %v", rep.Violations)
	}
	pos := map[int]int{}
	for i, op := range rep.Order {
		pos[op.ID] = i
	}
	if pos[1] >= pos[2] {
		t.Fatalf("linearization must keep op1 before op2 (real-time), got order %v", rep.Order)
	}

	// A sequentialization may place op2 before op1 — still legal, but it
	// violates the real-time order (the figure's middle row).
	swapped := []*Op{op2, op1, op3, op4, op6, op5}
	if viol := h.verifyLegal(swapped); len(viol) != 0 {
		t.Fatalf("swapped order should remain legal: %v", viol)
	}
	if viol := verifyRealTime(swapped); len(viol) == 0 {
		t.Fatal("swapped order must violate real-time order")
	}

	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("a linearizable history is sequentially consistent: %v", rep.Violations)
	}
}

func TestBaseOfUnknownValue(t *testing.T) {
	sc := scn(1, 0, []string{"ghost", ""}, 0, 10)
	h := NewHistory(2, []*Op{sc})
	if _, err := h.BaseOf(sc); err == nil || !strings.Contains(err.Error(), "no update wrote") {
		t.Fatalf("err = %v, want unknown-value error", err)
	}
	if rep := h.CheckLinearizable(); rep.OK {
		t.Fatal("history returning a never-written value must fail")
	}
}

func TestA1Violation(t *testing.T) {
	u1 := upd(1, 0, "a", 0, 100)
	u2 := upd(2, 1, "b", 0, 100)
	s1 := scn(3, 0, []string{"a", ""}, 10, 90) // sees only a
	s2 := scn(4, 1, []string{"", "b"}, 10, 90) // sees only b
	h := NewHistory(2, []*Op{u1, u2, s1, s2})
	if v := h.CheckA1(); len(v) == 0 {
		t.Fatal("expected an (A1) violation for incomparable bases")
	}
	if rep := h.CheckLinearizable(); rep.OK {
		t.Fatal("incomparable bases must not be linearizable")
	}
}

func TestA2Violation(t *testing.T) {
	u1 := upd(1, 0, "a", 0, 10)
	s1 := scn(2, 1, []string{"", ""}, 20, 30) // u1 → s1 but missed
	h := NewHistory(2, []*Op{u1, s1})
	if v := h.CheckA2(); len(v) == 0 {
		t.Fatal("expected an (A2) violation")
	}
	if rep := h.CheckLinearizable(); rep.OK {
		t.Fatal("missing a preceding update must not be linearizable")
	}
}

func TestA3Violation(t *testing.T) {
	// A pending update is seen by the first scan but vanishes from a
	// later one: (A2) is silent (the update never completed) but (A3)
	// and the real-time check both catch it.
	u1 := upd(1, 0, "a", 0, -1) // pending forever
	s1 := scn(2, 1, []string{"a", ""}, 10, 20)
	s2 := scn(3, 1, []string{"", ""}, 30, 40)
	h := NewHistory(2, []*Op{u1, s1, s2})
	if v := h.CheckA3(); len(v) == 0 {
		t.Fatal("expected an (A3) violation")
	}
	if rep := h.CheckLinearizable(); rep.OK {
		t.Fatal("shrinking bases must not be linearizable")
	}
}

func TestA4Violation(t *testing.T) {
	u1 := upd(1, 0, "a", 0, 10)
	u2 := upd(2, 1, "b", 20, 30) // u1 → u2
	sc := scn(3, 2, []string{"", "b", ""}, 5, 40)
	h := NewHistory(3, []*Op{u1, u2, sc})
	if v := h.CheckA2(); len(v) != 0 {
		t.Fatalf("A2 should pass here (scan invoked before u1 completed): %v", v)
	}
	if v := h.CheckA4(); len(v) == 0 {
		t.Fatal("expected an (A4) violation: base contains u2 but not its predecessor u1")
	}
	if rep := h.CheckLinearizable(); rep.OK {
		t.Fatal("prefix-closure violation must not be linearizable")
	}
}

func TestPendingOps(t *testing.T) {
	// A crashed update whose value was nevertheless seen must be
	// linearized; a pending scan is dropped.
	u1 := upd(1, 0, "a", 0, -1)
	s1 := scn(2, 1, []string{"a", ""}, 10, 20)
	s2 := scn(3, 1, nil, 30, -1) // pending scan
	h := NewHistory(2, []*Op{u1, s1, s2})
	rep := h.CheckLinearizable()
	if !rep.OK {
		t.Fatalf("history with pending ops should be linearizable: %v", rep.Violations)
	}
	ids := map[int]bool{}
	for _, op := range rep.Order {
		ids[op.ID] = true
	}
	if !ids[1] || !ids[2] || ids[3] {
		t.Fatalf("order should contain u1 and s1 but not the pending scan: %v", rep.Order)
	}
}

func TestSequentiallyConsistentButNotLinearizable(t *testing.T) {
	// Node 1's scan misses node 0's completed update: stale (not
	// atomic) but sequentially consistent.
	u1 := upd(1, 0, "a", 0, 10)
	s1 := scn(2, 1, []string{"", ""}, 20, 30)
	h := NewHistory(2, []*Op{u1, s1})
	if rep := h.CheckLinearizable(); rep.OK {
		t.Fatal("stale scan must not be linearizable")
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("stale scan is sequentially consistent: %v", rep.Violations)
	}
}

func TestS2Violation(t *testing.T) {
	// A node's scan returns its OWN later update: violates program order.
	s1 := scn(1, 0, []string{"a", ""}, 0, 10)
	u1 := upd(2, 0, "a", 20, 30)
	h := NewHistory(2, []*Op{s1, u1})
	if v := h.CheckS2(); len(v) == 0 {
		t.Fatal("expected an (S2) violation: scan sees own future update")
	}
	if rep := h.CheckSequentiallyConsistent(); rep.OK {
		t.Fatal("seeing one's own future must not be sequentially consistent")
	}
	// Missing one's own past is equally wrong.
	u2 := upd(3, 0, "b", 40, 50)
	s2 := scn(4, 0, []string{"a", ""}, 60, 70) // should see "b"
	h2 := NewHistory(2, []*Op{upd(5, 0, "a", 0, 10), u2, s2})
	if v := h2.CheckS2(); len(v) == 0 {
		t.Fatal("expected an (S2) violation: scan misses own past update")
	}
}

func TestS3Violation(t *testing.T) {
	u1 := upd(1, 0, "a", 0, -1) // pending, so A2/S2 are silent for node 1
	sA := scn(2, 1, []string{"a", ""}, 10, 20)
	sB := scn(3, 1, []string{"", ""}, 30, 40)
	h := NewHistory(2, []*Op{u1, sA, sB})
	if v := h.CheckS3(); len(v) == 0 {
		t.Fatal("expected an (S3) violation: same-node scans regressed")
	}
}

func TestDuplicateValueRejected(t *testing.T) {
	u1 := upd(1, 0, "a", 0, 10)
	u2 := upd(2, 0, "a", 20, 30)
	h := NewHistory(1, []*Op{u1, u2})
	if err := h.ValidateValues(); err == nil {
		t.Fatal("duplicate per-node value must be rejected")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(2)
	p1 := r.BeginUpdate(0, "x", 5)
	p1.End(15)
	p2 := r.BeginScan(1, 20)
	p2.EndScan([]string{"x", ""}, 30)
	p3 := r.BeginUpdate(1, "y", 40) // never ends: pending
	_ = p3
	h := r.History()
	if len(h.Ops) != 3 {
		t.Fatalf("ops = %d", len(h.Ops))
	}
	if got := h.UpdatesByNode(0); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("updatesByNode(0) = %v", got)
	}
	if got := h.Updates(); len(got) != 2 {
		t.Fatalf("updates = %v", got)
	}
	if got := h.Scans(); len(got) != 1 {
		t.Fatalf("scans = %v", got)
	}
	rep := h.CheckLinearizable()
	if !rep.OK {
		t.Fatalf("recorded history should be linearizable: %v", rep.Violations)
	}
}

// TestSequentialExecutionsAlwaysPass: histories generated by executing ops
// one at a time against a real array (atomic by construction) must pass
// both checkers, for arbitrary op mixes.
func TestSequentialExecutionsAlwaysPass(t *testing.T) {
	prop := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		k := int(nOps%60) + 1
		cur := make([]string, n)
		rec := NewRecorder(n)
		now := rt.Ticks(0)
		count := 0
		for i := 0; i < k; i++ {
			node := rng.Intn(n)
			now += rt.Ticks(1 + rng.Intn(10))
			if rng.Intn(2) == 0 {
				count++
				v := fmt.Sprintf("v%d-%d", node, count)
				p := rec.BeginUpdate(node, v, now)
				cur[node] = v
				now += rt.Ticks(1 + rng.Intn(10))
				p.End(now)
			} else {
				p := rec.BeginScan(node, now)
				now += rt.Ticks(1 + rng.Intn(10))
				p.EndScan(cur, now)
			}
		}
		h := rec.History()
		return h.CheckLinearizable().OK && h.CheckSequentiallyConsistent().OK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOverlappingAtomicExecutionsPass: ops overlap in time but take effect
// at a linearization point inside their interval; checker must accept.
func TestOverlappingAtomicExecutionsPass(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		cur := make([]string, n)
		rec := NewRecorder(n)
		// Generate operations with random overlapping intervals; apply
		// effects in linearization-point order.
		type interval struct {
			node    int
			scan    bool
			inv, pt rt.Ticks
			resp    rt.Ticks
			val     string
		}
		var ivs []interval
		busy := make([]rt.Ticks, n) // per-node sequentiality
		for i := 0; i < 40; i++ {
			node := rng.Intn(n)
			inv := busy[node] + rt.Ticks(rng.Intn(5))
			dur := rt.Ticks(1 + rng.Intn(20))
			resp := inv + dur
			pt := inv + rt.Ticks(rng.Int63n(int64(dur)))
			busy[node] = resp + 1
			ivs = append(ivs, interval{node: node, scan: rng.Intn(2) == 0, inv: inv, pt: pt, resp: resp, val: fmt.Sprintf("v%d-%d", node, i)})
		}
		// Apply in linearization-point order to compute scan results.
		order := make([]int, len(ivs))
		for i := range order {
			order[i] = i
		}
		for i := range order {
			for j := i + 1; j < len(order); j++ {
				if ivs[order[j]].pt < ivs[order[i]].pt {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		snaps := make(map[int][]string)
		for _, idx := range order {
			iv := ivs[idx]
			if iv.scan {
				snaps[idx] = append([]string(nil), cur...)
			} else {
				cur[iv.node] = iv.val
			}
		}
		for idx, iv := range ivs {
			if iv.scan {
				p := rec.BeginScan(iv.node, iv.inv)
				p.EndScan(snaps[idx], iv.resp)
			} else {
				p := rec.BeginUpdate(iv.node, iv.val, iv.inv)
				p.End(iv.resp)
			}
		}
		return rec.History().CheckLinearizable().OK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
