package history

import (
	"fmt"
	"sort"
	"strings"

	"mpsnap/internal/rt"
)

// RenderGantt draws the history as an ASCII space-time diagram in the
// style of the paper's Figure 1: one row per node, one box per operation
// (left edge = invocation, right edge = response), labeled with the
// operation and its value(s). cols is the diagram width in characters.
func RenderGantt(h *History, cols int) string {
	if cols < 40 {
		cols = 40
	}
	var maxT rt.Ticks
	for _, op := range h.Ops {
		if op.Resp > maxT {
			maxT = op.Resp
		}
		if op.Inv > maxT {
			maxT = op.Inv
		}
	}
	if maxT == 0 {
		maxT = 1
	}
	scale := func(t rt.Ticks) int {
		c := int(int64(t) * int64(cols-1) / int64(maxT))
		if c < 0 {
			c = 0
		}
		if c > cols-1 {
			c = cols - 1
		}
		return c
	}

	byNode := make(map[int][]*Op)
	for _, op := range h.Ops {
		byNode[op.Node] = append(byNode[op.Node], op)
	}
	nodes := make([]int, 0, len(byNode))
	for nd := range byNode {
		nodes = append(nodes, nd)
	}
	sort.Ints(nodes)

	var sb strings.Builder
	fmt.Fprintf(&sb, "time: 0 .. %s (%.1fD), one column ≈ %.2fD\n",
		fmtTicks(maxT), maxT.DUnits(), maxT.DUnits()/float64(cols))
	for _, nd := range nodes {
		// Each node may need several lanes if ops would overlap
		// visually (pending ops stretch to the right edge).
		type lane struct {
			buf   []byte
			until int
		}
		var lanes []*lane
		ops := byNode[nd]
		sort.Slice(ops, func(i, j int) bool { return ops[i].Inv < ops[j].Inv })
		for _, op := range ops {
			start := scale(op.Inv)
			end := cols - 1
			if !op.Pending() {
				end = scale(op.Resp)
			}
			label := opLabel(op)
			width := end - start + 1
			if width < len(label)+2 {
				width = len(label) + 2
				end = start + width - 1
			}
			var ln *lane
			for _, cand := range lanes {
				if cand.until < start {
					ln = cand
					break
				}
			}
			if ln == nil {
				ln = &lane{buf: []byte(strings.Repeat(" ", cols+32))}
				lanes = append(lanes, ln)
			}
			// Draw |label────|
			ln.buf[start] = '|'
			for c := start + 1; c < end && c < len(ln.buf); c++ {
				ln.buf[c] = '-'
			}
			copy(ln.buf[start+1:], label)
			if op.Pending() {
				copy(ln.buf[end-2:], "..x")
			} else if end < len(ln.buf) {
				ln.buf[end] = '|'
			}
			ln.until = end + 1
		}
		for li, ln := range lanes {
			tag := fmt.Sprintf("node %-2d", nd)
			if li > 0 {
				tag = "       "
			}
			fmt.Fprintf(&sb, "%s %s\n", tag, strings.TrimRight(string(ln.buf), " "))
		}
	}
	return sb.String()
}

func opLabel(op *Op) string {
	if op.Type == Update {
		return fmt.Sprintf("U(%s)", op.Arg)
	}
	if op.Pending() {
		return "S(?)"
	}
	var parts []string
	for _, v := range op.Snap {
		if v == NoValue {
			parts = append(parts, "⊥")
		} else {
			parts = append(parts, v)
		}
	}
	return "S[" + strings.Join(parts, ",") + "]"
}

func fmtTicks(t rt.Ticks) string {
	return fmt.Sprintf("%d ticks", int64(t))
}
