package mpsnap_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mpsnap"
)

// TestSoakEQASO is the long-haul exercise: a larger cluster, hundreds of
// operations, staggered crashes, full consistency checking. Skipped with
// -short.
func TestSoakEQASO(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(0); seed < 3; seed++ {
		n := 15
		f := 7
		const crashes = 4
		cfg := mpsnap.Config{N: n, F: f, Algorithm: mpsnap.EQASO, Seed: seed}
		for v := 0; v < crashes; v++ {
			cfg.Crashes = append(cfg.Crashes, mpsnap.CrashSpec{Node: v, At: mpsnap.Ticks(5000 * (v + 1))})
		}
		c, err := mpsnap.NewSimCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(cl *mpsnap.Client) {
				rng := rand.New(rand.NewSource(seed*77 + int64(i)))
				for k := 0; k < 20; k++ {
					var err error
					op := "update"
					if rng.Intn(2) == 0 {
						err = cl.Update([]byte(fmt.Sprintf("s%d-%d", i, k)))
					} else {
						op = "scan"
						_, err = cl.Scan()
					}
					if err != nil {
						// Only a scheduled crash may abort a client; any
						// other error (or a crash error on a node that
						// was never scheduled to crash) is a bug.
						if errors.Is(err, mpsnap.ErrCrashed) && i < crashes {
							return
						}
						t.Errorf("seed %d node %d op %d (%s): %v", seed, i, k, op, err)
						return
					}
					_ = cl.Sleep(mpsnap.Ticks(rng.Intn(1500)))
				}
			})
		}
		if err := c.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := c.Stats()
		if st.Operations < 200 {
			t.Fatalf("seed %d: only %d operations completed", seed, st.Operations)
		}
	}
}

// TestSoakAllAlgorithmsMedium runs a medium-sized checked workload on
// every algorithm. Skipped with -short.
func TestSoakAllAlgorithmsMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, alg := range mpsnap.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			n, f := 7, 3
			if alg.RequiresNGreaterThan3F() {
				f = 2
			}
			ops := 8
			if alg == mpsnap.Stacked {
				ops = 3 // n² collects per op: keep the soak bounded
			}
			c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Algorithm: alg, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				i := i
				c.Client(i, func(cl *mpsnap.Client) {
					rng := rand.New(rand.NewSource(int64(i)))
					for k := 0; k < ops; k++ {
						var err error
						op := "update"
						if rng.Intn(2) == 0 {
							err = cl.Update([]byte(fmt.Sprintf("s%d-%d", i, k)))
						} else {
							op = "scan"
							_, err = cl.Scan()
						}
						if err != nil {
							// This run schedules no crashes: every
							// client error is a bug, crash-flavored
							// or not.
							t.Errorf("%s node %d op %d (%s): %v", alg, i, k, op, err)
							return
						}
					}
				})
			}
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			if err := c.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
