package statemachine_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/statemachine"
)

func TestApplyAndQuery(t *testing.T) {
	n := 3
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(cl *mpsnap.Client) {
			m := statemachine.New(cl.Raw(), i)
			for k := 0; k < 2; k++ {
				if err := m.Apply([]byte(fmt.Sprintf("c%d-%d", i, k))); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
			_ = cl.Sleep(30 * mpsnap.D)
			cmds, err := m.Query()
			if err != nil {
				t.Errorf("query: %v", err)
				return
			}
			if len(cmds) != 2*n {
				t.Errorf("node %d sees %d commands, want %d", i, len(cmds), 2*n)
				return
			}
			// Deterministic order: (node, seq) ascending.
			for j := 1; j < len(cmds); j++ {
				a, b := cmds[j-1], cmds[j]
				if a.Node > b.Node || (a.Node == b.Node && a.Seq >= b.Seq) {
					t.Errorf("order violated: %+v before %+v", a, b)
				}
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySeesOwnCommands(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		m := statemachine.New(cl.Raw(), 0)
		for k := 0; k < 3; k++ {
			if err := m.Apply([]byte{byte(k)}); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
			cmds, err := m.Query()
			if err != nil {
				t.Errorf("query: %v", err)
				return
			}
			own := 0
			for _, cmd := range cmds {
				if cmd.Node == 0 {
					own++
				}
			}
			if own != k+1 {
				t.Errorf("after %d applies, query sees %d own commands", k+1, own)
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFoldCommutativeCounter(t *testing.T) {
	// The canonical update-query machine: commands are "+d" increments;
	// every node's fold converges to the same total.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		deltas := make([][]int, n)
		want := 0
		for i := range deltas {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				d := rng.Intn(20) + 1
				deltas[i] = append(deltas[i], d)
				want += d
			}
		}
		c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: (n - 1) / 2, Seed: seed})
		if err != nil {
			return false
		}
		ok := true
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(cl *mpsnap.Client) {
				m := statemachine.New(cl.Raw(), i)
				for _, d := range deltas[i] {
					if err := m.Apply([]byte{byte(d)}); err != nil {
						ok = false
						return
					}
				}
				_ = cl.Sleep(30 * mpsnap.D)
				got, err := m.Fold(0, func(state any, cmd statemachine.Command) any {
					return state.(int) + int(cmd.Op[0])
				})
				if err != nil || got.(int) != want {
					ok = false
				}
			})
		}
		if err := c.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
