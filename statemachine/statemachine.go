// Package statemachine implements the update-query state machine of
// Faleiro et al. (reference [23]), another of the paper's motivating
// applications. Updates are commutative commands appended to the calling
// node's segment (its command log); queries fold a SCAN of all logs in a
// deterministic order. Because commands commute, any linearization of the
// per-node logs yields the same state, so an atomic snapshot suffices —
// no consensus required.
package statemachine

import (
	"fmt"
	"sort"

	"mpsnap/internal/wire"
)

// Object is the snapshot object the machine runs over (mpsnap.Object).
type Object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

// Command is one applied command with its origin.
type Command struct {
	Node int
	Seq  int
	Op   []byte
}

// Machine is one node's handle on the replicated update-query machine.
type Machine struct {
	obj Object
	id  int
	log [][]byte // this node's commands, in program order
}

// New binds node id's machine to its snapshot object.
func New(obj Object, id int) *Machine { return &Machine{obj: obj, id: id} }

func encodeLog(log [][]byte) []byte {
	var b wire.Buffer
	b.PutUvarint(uint64(len(log)))
	for _, op := range log {
		b.PutBytes(op)
	}
	return b.Bytes()
}

func decodeLog(b []byte) ([][]byte, error) {
	d := wire.NewDecoder(b)
	n := d.Count(1)
	var log [][]byte
	for i := 0; i < n; i++ {
		log = append(log, d.Bytes())
	}
	return log, d.Err()
}

// Apply appends a (commutative) command to this node's log (one UPDATE).
func (m *Machine) Apply(op []byte) error {
	m.log = append(m.log, append([]byte(nil), op...))
	return m.obj.Update(encodeLog(m.log))
}

// Query scans all logs and returns every command in a deterministic
// order: by (node, per-node sequence). Callers fold the commands into
// their state; since commands commute, the fold is well-defined.
func (m *Machine) Query() ([]Command, error) {
	snap, err := m.obj.Scan()
	if err != nil {
		return nil, err
	}
	var out []Command
	for node, seg := range snap {
		log := [][]byte(nil)
		if seg != nil {
			log, err = decodeLog(seg)
			if err != nil {
				return nil, fmt.Errorf("statemachine: segment %d: %w", node, err)
			}
		}
		if node == m.id && len(m.log) > len(log) {
			log = m.log // own completed commands are authoritative
		}
		for s, op := range log {
			out = append(out, Command{Node: node, Seq: s + 1, Op: op})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out, nil
}

// Fold queries and folds the commands with the caller's reducer.
func (m *Machine) Fold(init any, step func(state any, cmd Command) any) (any, error) {
	cmds, err := m.Query()
	if err != nil {
		return nil, err
	}
	state := init
	for _, c := range cmds {
		state = step(state, c)
	}
	return state, nil
}
