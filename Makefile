# Development targets for the mpsnap repository.

GO ?= go

.PHONY: all build build-examples test test-race test-short test-recovery test-cluster test-engines test-churn cover bench bench-core bench-smoke fuzz fuzz-wire fuzz-wal fuzz-engines fuzz-monitor explore experiments chaos soak-churn vet fmt-check clean

all: vet test

build:
	$(GO) build ./...

# Compile every example program (build-only smoke; they are interactive or
# long-running, so CI never executes them).
build-examples:
	@for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null "./$$d" || exit 1; \
	done

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-formatted.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# Crash-recovery matrix under the race detector: WAL replay, restart and
# rejoin under chaos on both the sim and chan backends, plus the WAL's
# crash-point suite and the pruned-log differential oracle.
test-recovery:
	$(GO) test -race -count=1 -run 'Restart|Recover|Replay|Writer|CrashPoint|Prune|NoteVouch|Differential' ./internal/chaos/ ./internal/wal/ ./internal/core/

# Sharded-cluster matrix under the race detector: routing, shard-map
# races, and validated cross-shard cuts on the sim and chan backends
# (TestRunChanSeeds covers 4 seeds with per-shard fault schedules), plus
# whole-shard crash+recover and whole-shard partition episodes.
test-cluster:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/mux/
	$(GO) run ./cmd/asocluster -backend sim,chan -seed 7 -duration 1s -shards 3 -shard-crash 1
	$(GO) run ./cmd/asocluster -backend sim,chan -seed 9 -duration 1s -shards 2 -shard-partition 0

# Engine matrix under the race detector: the registry smoke across every
# registered engine, the eqaso/acr/fastsnap differential corpus, and the
# challenger chaos matrix (4 seeds × sim + chan with the default fault
# mix).
test-engines:
	$(GO) test -race -count=1 ./internal/engine/
	$(GO) test -race -count=1 -run 'TestChallengerEngines|TestRunEngines' ./internal/chaos/ ./internal/bench/

# Coverage profile across all packages plus a per-function summary; the
# total line is the number CI reports.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# One benchmark iteration per target; see bench_output.txt conventions.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Data-structure micro-benchmarks: the reference map engine (ValueSet)
# vs the history-independent value log on Add/CountLE/ViewLE/EQ setup.
bench-core:
	$(GO) test ./internal/core -bench . -benchmem -run '^$$'

# Quick service-layer throughput sweep (batched vs serialized clients)
# plus the wire-vs-gob codec micro-benchmark; writes the machine-readable
# points to BENCH_throughput.json and BENCH_codec.json.
bench-smoke:
	$(GO) run ./cmd/asobench -e throughput -quick -json BENCH_throughput.json
	$(GO) run ./cmd/asobench -e codec -json BENCH_codec.json
	$(GO) run ./cmd/asobench -e latency -quick -json BENCH_latency.json
	$(GO) run ./cmd/asobench -e hotpath -quick -check -json BENCH_hotpath.json
	$(GO) run ./cmd/asobench -e recovery -quick -check -json BENCH_recovery.json
	$(GO) run ./cmd/asobench -e cluster -quick -check -json BENCH_cluster.json
	$(GO) run ./cmd/asobench -e engines -quick -check -json BENCH_engines.json

# Wall-clock saturation smoke on the real TCP loopback stack: a reduced
# loadgen sweep plus the tuned-vs-legacy transport bake-off; -check fails
# the build unless the tuned path reaches >= 1.5x legacy ops/s at the
# bake-off client count. The committed BENCH_wallclock.json comes from
# the unreduced run (`go run ./cmd/asobench -e wallclock -json ... -check`).
bench-wallclock:
	$(GO) run ./cmd/asobench -e wallclock -quick -check -json BENCH_wallclock_smoke.json

# Churn matrix under the race detector: the streaming monitor's unit,
# equivalence, and injected-violation suites, the churn schedule property
# tests, then a short churn CLI matrix — eqaso, acr, fastsnap × 2 seeds
# on the sim and chan backends with the monitor armed.
test-churn:
	$(GO) test -race -count=1 ./internal/monitor/
	$(GO) test -race -count=1 -run 'TestChurn|TestGenerateChurn' ./internal/chaos/
	@for eng in eqaso acr fastsnap; do \
		for seed in 1 2; do \
			$(GO) run ./cmd/asochaos -backend sim,chan -engine $$eng -seed $$seed -duration 2s -churn || exit 1; \
		done; \
	done

# Randomized conformance fuzzing across all algorithms (bounded batch).
fuzz:
	$(GO) run ./cmd/asofuzz -count 5000

# Native Go fuzzing of the checker against brute force (30s).
fuzz-checker:
	$(GO) test -fuzz=FuzzCheckerAgainstBruteForce -fuzztime=30s ./internal/history/

# Wire codec fuzzing: canonical round trips + mutated-frame decodes, via
# both the asofuzz soak driver and the native fuzz engines.
fuzz-wire:
	$(GO) run ./cmd/asofuzz -wire -count 5000 -seed 1
	$(GO) test -fuzz=FuzzWireRoundTrip -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=30s ./internal/wire/

# WAL replay fuzzing: arbitrary byte images must never panic and must
# recover exactly the longest intact record prefix.
fuzz-wal:
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=30s ./internal/wal/

# Monitor window fuzzing: random op tapes (the history fuzz corpus shape,
# restart markers included) streamed through the online monitor must
# produce zero violations whenever the offline checker accepts the tape.
fuzz-monitor:
	$(GO) test -fuzz=FuzzMonitorWindow -fuzztime=30s -run '^$$' ./internal/monitor/

# Differential engine fuzzing: random sequential op schedules run on
# EQ-ASO vs the acr and fastsnap challengers, every scan compared
# pointwise against the reference and the trivial oracle.
fuzz-engines:
	$(GO) test -fuzz=FuzzEngineEquivalence -fuzztime=30s -run '^$$' ./internal/engine/

# Bounded-exhaustive schedule exploration of the core algorithms.
explore:
	$(GO) run ./cmd/asoexplore -alg eqaso -depth 6
	$(GO) run ./cmd/asoexplore -alg oneshot -depth 6

# Regenerate every table/figure of EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/asobench

# Seeded chaos run (crashes, partitions, loss, delay spikes) with
# end-to-end linearizability checking, on both the simulator and a TCP
# loopback cluster. Override: make chaos SEED=7
SEED ?= 42
chaos:
	$(GO) run ./cmd/asochaos -seed $(SEED) -duration 5s

# Long churn soak on the simulator: rolling restarts, membership flaps,
# lagging links, and an adversarial bursty workload across the atomic
# engine matrix, with the streaming monitor armed and first-violation
# trace dumps landing in traces/. Override: make soak-churn SOAK_DURATION=10m
SOAK_DURATION ?= 60s
soak-churn:
	@mkdir -p traces
	@for eng in eqaso acr fastsnap; do \
		$(GO) run ./cmd/asochaos -backend sim -engine $$eng -seed $(SEED) -duration $(SOAK_DURATION) -churn -trace-dir traces || exit 1; \
	done

clean:
	$(GO) clean ./...
