package mpsnap_test

import (
	"fmt"
	"testing"

	"mpsnap"
	"mpsnap/crdt"
	"mpsnap/detect"
)

// TestMultiObjectCluster runs a CRDT counter and a termination detector as
// extra objects next to the primary snapshot — all over one cluster.
func TestMultiObjectCluster(t *testing.T) {
	const n = 4
	c, err := mpsnap.NewSimCluster(mpsnap.Config{
		N: n, F: 1, Seed: 8,
		Extra: []mpsnap.ExtraObject{
			{Name: "counter"},
			{Name: "monitor", Algorithm: mpsnap.EQASO},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(cl *mpsnap.Client) {
			if cl.Extra("nope") != nil {
				t.Error("unknown extra should be nil")
			}
			ctr := crdt.NewGCounter(cl.Extra("counter"))
			mon := detect.New(cl.Extra("monitor"), i)
			// Primary object traffic (recorded + checked).
			if err := cl.Update([]byte(fmt.Sprintf("p%d", i))); err != nil {
				return
			}
			// Counter traffic on its own object.
			if err := ctr.Add(uint64(i + 1)); err != nil {
				t.Errorf("counter: %v", err)
				return
			}
			// Monitor traffic on its own object.
			if err := mon.Publish(func(s *detect.Status) { s.Active = false }); err != nil {
				t.Errorf("monitor: %v", err)
				return
			}
			_ = cl.Sleep(30 * mpsnap.D)
			v, err := ctr.Value()
			if err != nil || v != 1+2+3+4 {
				t.Errorf("counter = %d, %v; want 10", v, err)
			}
			done, err := mon.CheckTermination()
			if err != nil || !done {
				t.Errorf("termination = %v, %v", done, err)
			}
			snap, err := cl.Scan()
			if err != nil {
				t.Errorf("primary scan: %v", err)
				return
			}
			if string(snap[i]) != fmt.Sprintf("p%d", i) {
				t.Errorf("primary segment corrupted: %q (cross-object leak?)", snap[i])
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err) // only the primary object's history is checked
	}
}

func TestExtraObjectValidation(t *testing.T) {
	if _, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Extra: []mpsnap.ExtraObject{{}}}); err == nil {
		t.Fatal("nameless extra must be rejected")
	}
	if _, err := mpsnap.NewSimCluster(mpsnap.Config{N: 5, F: 2,
		Extra: []mpsnap.ExtraObject{{Name: "b", Algorithm: mpsnap.ByzASO}}}); err == nil {
		t.Fatal("byzantine extra with n <= 3f must be rejected")
	}
	if _, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1,
		Extra: []mpsnap.ExtraObject{{Name: "b", Algorithm: "bogus"}}}); err == nil {
		t.Fatal("unknown extra algorithm must be rejected")
	}
}
