package lattice_test

import (
	"fmt"
	"testing"

	"mpsnap/internal/rt"
	"mpsnap/lattice"
)

func proposals(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("p%d", i))
	}
	return out
}

func TestRunAllKinds(t *testing.T) {
	for _, kind := range []lattice.Kind{lattice.EQ, lattice.Round, lattice.ByzEQ} {
		n, f := 5, 2
		if kind == lattice.ByzEQ {
			n, f = 7, 2
		}
		decisions, err := lattice.Run(lattice.Config{N: n, F: f, Kind: kind, Seed: 1, Proposals: proposals(n)})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(decisions) != n {
			t.Fatalf("%s: %d decisions", kind, len(decisions))
		}
		for _, d := range decisions {
			found := false
			for _, p := range d.Proposers {
				if p == d.Node {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: node %d decision misses own proposal", kind, d.Node)
			}
		}
	}
}

func TestRunWithCrashes(t *testing.T) {
	decisions, err := lattice.Run(lattice.Config{
		N: 7, F: 3, Seed: 3, Proposals: proposals(7),
		CrashAt: map[int]rt.Ticks{5: 500, 6: 1500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) < 5 {
		t.Fatalf("only %d nodes decided", len(decisions))
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := lattice.Run(lattice.Config{N: 4, F: 2}); err == nil {
		t.Fatal("n=4 f=2 must be rejected")
	}
	if _, err := lattice.Run(lattice.Config{N: 5, F: 2, Kind: lattice.ByzEQ, Proposals: proposals(5)}); err == nil {
		t.Fatal("byz-eq with n=5 f=2 must be rejected (needs n > 3f)")
	}
	if _, err := lattice.Run(lattice.Config{N: 3, F: 1, Kind: "bogus", Proposals: proposals(3)}); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
	if _, err := lattice.Run(lattice.Config{N: 3, F: 1, Proposals: proposals(4)}); err == nil {
		t.Fatal("too many proposals must be rejected")
	}
	if _, err := lattice.Run(lattice.Config{N: 3, F: 1, Proposals: proposals(3), CrashAt: map[int]rt.Ticks{8: 1}}); err == nil {
		t.Fatal("crash for unknown node must be rejected")
	}
}

func TestPartialProposals(t *testing.T) {
	props := proposals(5)
	props[2] = nil // node 2 proposes nothing
	decisions, err := lattice.Run(lattice.Config{N: 5, F: 2, Seed: 9, Proposals: props})
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 4 {
		t.Fatalf("%d decisions, want 4", len(decisions))
	}
	for _, d := range decisions {
		for _, p := range d.Proposers {
			if p == 2 {
				t.Fatal("node 2 never proposed but appears in a decision")
			}
		}
	}
}
