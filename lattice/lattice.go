// Package lattice exposes the repository's one-shot lattice agreement
// algorithms (Section I-B of the paper: the lattice operation abstracted
// into an early-stopping LA algorithm) behind a simple simulated-run API.
//
// In lattice agreement every node proposes a value; every node decides a
// set of proposals such that (i) its own proposal is included, (ii) only
// proposed values are decided, and (iii) all decided sets are totally
// ordered by containment.
package lattice

import (
	"fmt"

	"mpsnap/internal/core"
	"mpsnap/internal/la"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// Kind selects the algorithm.
type Kind string

// Algorithms.
const (
	// EQ is the paper's early-stopping lattice agreement (O(√k·D)).
	EQ Kind = "eq"
	// Round is the pull-based (double-collect style) baseline (O(n·D)).
	Round Kind = "round"
	// ByzEQ is the Byzantine-tolerant variant over reliable broadcast
	// (requires n > 3f).
	ByzEQ Kind = "byz-eq"
)

// Config parameterizes a simulated one-shot run.
type Config struct {
	// N nodes, resilience F (n > 2f).
	N, F int
	// Kind selects the algorithm (default EQ).
	Kind Kind
	// Seed makes the run reproducible.
	Seed int64
	// Proposals[i] is node i's proposal; nil means node i proposes
	// nothing (it still participates).
	Proposals [][]byte
	// CrashAt schedules crashes: node -> virtual time (may be empty).
	CrashAt map[int]rt.Ticks
}

// Decision is one node's outcome.
type Decision struct {
	// Node is the decider.
	Node int
	// Proposers lists whose proposals are in the decided set (sorted).
	Proposers []int
	// Values holds the decided payloads, indexed like Proposers.
	Values [][]byte
	// LatencyD is the decision latency in D units.
	LatencyD float64
}

// Run executes one simulated lattice agreement and returns the decisions
// of the nodes that decided (crashed proposers may be absent). Decisions
// are guaranteed comparable; Run also re-verifies that and fails loudly
// otherwise.
func Run(cfg Config) ([]Decision, error) {
	if cfg.Kind == "" {
		cfg.Kind = EQ
	}
	if cfg.N <= 2*cfg.F || cfg.N <= 0 {
		return nil, fmt.Errorf("lattice: need n > 2f, got n=%d f=%d", cfg.N, cfg.F)
	}
	if cfg.Kind == ByzEQ && cfg.N <= 3*cfg.F {
		return nil, fmt.Errorf("lattice: %q needs n > 3f, got n=%d f=%d", cfg.Kind, cfg.N, cfg.F)
	}
	if len(cfg.Proposals) > cfg.N {
		return nil, fmt.Errorf("lattice: %d proposals for %d nodes", len(cfg.Proposals), cfg.N)
	}
	w := sim.New(sim.Config{N: cfg.N, F: cfg.F, Seed: cfg.Seed})
	propose := make([]func([]byte) (core.View, error), cfg.N)
	for i := 0; i < cfg.N; i++ {
		switch cfg.Kind {
		case EQ:
			nd := la.NewEQLA(w.Runtime(i))
			w.SetHandler(i, nd)
			propose[i] = nd.Propose
		case Round:
			nd := la.NewRoundLA(w.Runtime(i))
			w.SetHandler(i, nd)
			propose[i] = nd.Propose
		case ByzEQ:
			nd := la.NewByzEQLA(w.Runtime(i))
			w.SetHandler(i, nd)
			propose[i] = nd.Propose
		default:
			return nil, fmt.Errorf("lattice: unknown kind %q", cfg.Kind)
		}
	}
	for node, t := range cfg.CrashAt {
		if node < 0 || node >= cfg.N {
			return nil, fmt.Errorf("lattice: crash for unknown node %d", node)
		}
		w.CrashAt(node, t)
	}
	views := make([]core.View, cfg.N)
	lat := make([]float64, cfg.N)
	decided := make([]bool, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		if i >= len(cfg.Proposals) || cfg.Proposals[i] == nil {
			continue
		}
		w.GoNode(fmt.Sprintf("proposer-%d", i), i, func(p *sim.Proc) {
			start := p.Now()
			v, err := propose[i](cfg.Proposals[i])
			if err != nil {
				return // crashed
			}
			views[i] = v
			lat[i] = (p.Now() - start).DUnits()
			decided[i] = true
		})
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	var out []Decision
	for i := 0; i < cfg.N; i++ {
		if !decided[i] {
			continue
		}
		d := Decision{Node: i, LatencyD: lat[i]}
		views[i].Each(func(val core.Value) {
			d.Proposers = append(d.Proposers, val.TS.Writer)
			d.Values = append(d.Values, val.Payload)
		})
		out = append(out, d)
		for j := 0; j < i; j++ {
			if decided[j] && !views[i].ComparableWith(views[j]) {
				return nil, fmt.Errorf("lattice: decisions of nodes %d and %d incomparable (bug)", j, i)
			}
		}
	}
	return out, nil
}
