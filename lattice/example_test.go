package lattice_test

import (
	"fmt"

	"mpsnap/lattice"
)

// Five nodes propose; two crash mid-protocol; the survivors decide
// comparable sets (every pair ordered by containment).
func Example() {
	proposals := make([][]byte, 5)
	for i := range proposals {
		proposals[i] = []byte(fmt.Sprintf("x%d", i))
	}
	decisions, err := lattice.Run(lattice.Config{
		N: 5, F: 2, Kind: lattice.EQ, Seed: 4, Proposals: proposals,
	})
	if err != nil {
		panic(err)
	}
	// With this seed, failure-free: everyone decides the full set.
	full := 0
	for _, d := range decisions {
		if len(d.Proposers) == 5 {
			full++
		}
	}
	fmt.Printf("%d nodes decided, %d with the full set\n", len(decisions), full)
	// Output:
	// 5 nodes decided, 5 with the full set
}
