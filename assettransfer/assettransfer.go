// Package assettransfer implements the asset transfer object
// ("cryptocurrency") of Guerraoui et al. (reference [26]) on top of a
// snapshot object, the application highlighted in the paper's abstract and
// conclusion.
//
// Each node owns one account. A node's segment holds its *outgoing
// transfer log*; an account balance is its initial funds plus incoming
// minus outgoing transfers computed from a SCAN. Because segments are
// single-writer and nodes are sequential, an owner can never double-spend:
// it validates its balance against an atomic snapshot and appends to its
// own log, and no one else can write that log. Consensus is not needed —
// exactly the observation of [26] that asset transfer has consensus
// number 1.
package assettransfer

import (
	"errors"
	"fmt"

	"mpsnap/internal/wire"
)

// Object is the snapshot object the ledger runs over (mpsnap.Object).
// It must be atomic (an ASO, not an SSO) for the no-double-spend argument.
type Object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

// Transfer is one outgoing transfer.
type Transfer struct {
	To     int
	Amount uint64
}

// ErrInsufficientFunds rejects an overdraft.
var ErrInsufficientFunds = errors.New("assettransfer: insufficient funds")

// ErrBadAccount rejects an unknown account.
var ErrBadAccount = errors.New("assettransfer: unknown account")

// Ledger is one node's handle on the asset transfer object.
type Ledger struct {
	obj     Object
	id      int
	n       int
	initial []uint64
	log     []Transfer // this node's outgoing log (single writer)
}

// New binds account id (of n) to the node's snapshot object. initial
// holds every account's genesis balance; all nodes must agree on it.
func New(obj Object, id, n int, initial []uint64) (*Ledger, error) {
	if len(initial) != n {
		return nil, fmt.Errorf("assettransfer: %d initial balances for %d accounts", len(initial), n)
	}
	return &Ledger{obj: obj, id: id, n: n, initial: append([]uint64(nil), initial...)}, nil
}

func encodeLog(log []Transfer) []byte {
	var b wire.Buffer
	b.PutUvarint(uint64(len(log)))
	for _, tr := range log {
		b.PutInt(tr.To)
		b.PutUvarint(tr.Amount)
	}
	return b.Bytes()
}

func decodeLog(b []byte) ([]Transfer, error) {
	d := wire.NewDecoder(b)
	n := d.Count(2)
	var log []Transfer
	for i := 0; i < n; i++ {
		log = append(log, Transfer{To: d.Int(), Amount: d.Uvarint()})
	}
	return log, d.Err()
}

// balances computes every account's balance from a snapshot.
func (l *Ledger) balances(snap [][]byte) ([]int64, error) {
	bal := make([]int64, l.n)
	for i := range bal {
		bal[i] = int64(l.initial[i])
	}
	for owner, seg := range snap {
		log := []Transfer(nil)
		if seg != nil {
			var err error
			log, err = decodeLog(seg)
			if err != nil {
				return nil, fmt.Errorf("assettransfer: segment %d: %w", owner, err)
			}
		}
		if owner == l.id && len(l.log) > len(log) {
			// Our own segment: our local log is authoritative (the
			// snapshot can only lag our completed updates, never lead).
			log = l.log
		}
		for _, tr := range log {
			bal[owner] -= int64(tr.Amount)
			if tr.To >= 0 && tr.To < l.n {
				bal[tr.To] += int64(tr.Amount)
			}
		}
	}
	return bal, nil
}

// Balance reads an account's balance (one SCAN).
func (l *Ledger) Balance(account int) (uint64, error) {
	if account < 0 || account >= l.n {
		return 0, ErrBadAccount
	}
	snap, err := l.obj.Scan()
	if err != nil {
		return 0, err
	}
	bal, err := l.balances(snap)
	if err != nil {
		return 0, err
	}
	if bal[account] < 0 {
		return 0, fmt.Errorf("assettransfer: negative balance %d for account %d (safety violation)", bal[account], account)
	}
	return uint64(bal[account]), nil
}

// Transfer moves amount from this node's account to account to. It scans
// to validate funds, then appends to the node's own log (one SCAN + one
// UPDATE).
func (l *Ledger) Transfer(to int, amount uint64) error {
	if to < 0 || to >= l.n {
		return ErrBadAccount
	}
	bal, err := l.Balance(l.id)
	if err != nil {
		return err
	}
	if bal < amount {
		return ErrInsufficientFunds
	}
	l.log = append(l.log, Transfer{To: to, Amount: amount})
	if err := l.obj.Update(encodeLog(l.log)); err != nil {
		// The update may still take effect (crash during completion);
		// keeping it in the local log is the conservative choice.
		return err
	}
	return nil
}

// Outgoing returns a copy of this node's outgoing log.
func (l *Ledger) Outgoing() []Transfer { return append([]Transfer(nil), l.log...) }
