package assettransfer_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/assettransfer"
)

func TestSimpleTransfer(t *testing.T) {
	n := 3
	initial := []uint64{100, 100, 100}
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		l, err := assettransfer.New(cl.Raw(), 0, n, initial)
		if err != nil {
			t.Error(err)
			return
		}
		if err := l.Transfer(1, 30); err != nil {
			t.Errorf("transfer: %v", err)
			return
		}
		b, err := l.Balance(0)
		if err != nil || b != 70 {
			t.Errorf("balance(0) = %d, %v; want 70", b, err)
		}
	})
	c.Client(1, func(cl *mpsnap.Client) {
		l, err := assettransfer.New(cl.Raw(), 1, n, initial)
		if err != nil {
			t.Error(err)
			return
		}
		_ = cl.Sleep(30 * mpsnap.D)
		b, err := l.Balance(1)
		if err != nil || b != 130 {
			t.Errorf("balance(1) = %d, %v; want 130", b, err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverdraftRejected(t *testing.T) {
	n := 3
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		l, _ := assettransfer.New(cl.Raw(), 0, n, []uint64{10, 0, 0})
		if err := l.Transfer(1, 11); !errors.Is(err, assettransfer.ErrInsufficientFunds) {
			t.Errorf("overdraft returned %v", err)
		}
		if err := l.Transfer(1, 10); err != nil {
			t.Errorf("exact-balance transfer: %v", err)
		}
		if err := l.Transfer(1, 1); !errors.Is(err, assettransfer.ErrInsufficientFunds) {
			t.Errorf("post-drain transfer returned %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadAccount(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		l, _ := assettransfer.New(cl.Raw(), 0, 3, []uint64{5, 5, 5})
		if err := l.Transfer(7, 1); !errors.Is(err, assettransfer.ErrBadAccount) {
			t.Errorf("transfer to unknown account returned %v", err)
		}
		if _, err := l.Balance(-1); !errors.Is(err, assettransfer.ErrBadAccount) {
			t.Errorf("balance of unknown account returned %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestConservationAndNoOverdraft: under random concurrent transfers,
// total funds are conserved and no balance ever goes negative.
func TestConservationAndNoOverdraft(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		initial := make([]uint64, n)
		var total uint64
		for i := range initial {
			initial[i] = uint64(rng.Intn(50) + 10)
			total += initial[i]
		}
		c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: (n - 1) / 2, Seed: seed})
		if err != nil {
			return false
		}
		ok := true
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(cl *mpsnap.Client) {
				rng := rand.New(rand.NewSource(seed*101 + int64(i)))
				l, err := assettransfer.New(cl.Raw(), i, n, initial)
				if err != nil {
					ok = false
					return
				}
				for k := 0; k < 4; k++ {
					to := rng.Intn(n)
					amt := uint64(rng.Intn(40) + 1)
					err := l.Transfer(to, amt)
					if err != nil && !errors.Is(err, assettransfer.ErrInsufficientFunds) {
						ok = false
						return
					}
					_ = cl.Sleep(mpsnap.Ticks(rng.Intn(2000)))
				}
				// Quiesce, then audit the whole ledger.
				_ = cl.Sleep(40 * mpsnap.D)
				var sum uint64
				for acct := 0; acct < n; acct++ {
					b, err := l.Balance(acct)
					if err != nil {
						ok = false // includes the negative-balance safety check
						return
					}
					sum += b
				}
				if sum != total {
					ok = false
				}
			})
		}
		if err := c.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfTransferConserves: transfers to oneself are legal no-ops in
// effect on the balance.
func TestSelfTransferConserves(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		l, _ := assettransfer.New(cl.Raw(), 0, 3, []uint64{10, 0, 0})
		if err := l.Transfer(0, 5); err != nil {
			t.Errorf("self transfer: %v", err)
			return
		}
		b, err := l.Balance(0)
		if err != nil || b != 10 {
			t.Errorf("balance = %d, %v; want 10", b, err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
