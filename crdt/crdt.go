// Package crdt implements linearizable state-based CRDTs on top of a
// snapshot object — one of the paper's motivating applications (Section I:
// "linearizable conflict-free replicated data types").
//
// Each node's CRDT contribution lives in its own segment of the snapshot
// object: updates rewrite the caller's segment (single-writer), reads SCAN
// all segments and join them. Run over an atomic snapshot (EQ-ASO), reads
// and writes are linearizable; over an SSO they are sequentially
// consistent (a classic consistency/latency trade: SSO reads are local).
//
// All methods must be called from the owning node's client thread (at most
// one operation at a time), matching the paper's sequential-node model.
package crdt

import (
	"fmt"
	"sort"

	"mpsnap/internal/wire"
)

// Object is the snapshot object a CRDT runs over (mpsnap.Object).
type Object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

func encodeUint(v uint64) []byte {
	var b wire.Buffer
	b.PutUvarint(v)
	return b.Bytes()
}

func decodeUint(b []byte) (uint64, error) {
	d := wire.NewDecoder(b)
	v := d.Uvarint()
	return v, d.Err()
}

func encodePN(v pnState) []byte {
	var b wire.Buffer
	b.PutUvarint(v.P)
	b.PutUvarint(v.N)
	return b.Bytes()
}

func decodePN(b []byte) (pnState, error) {
	d := wire.NewDecoder(b)
	v := pnState{P: d.Uvarint(), N: d.Uvarint()}
	return v, d.Err()
}

func encodeTP(st tpState) []byte {
	var b wire.Buffer
	putStrings(&b, st.Added)
	putStrings(&b, st.Removed)
	return b.Bytes()
}

func decodeTP(b []byte) (tpState, error) {
	d := wire.NewDecoder(b)
	st := tpState{Added: getStrings(d), Removed: getStrings(d)}
	return st, d.Err()
}

func putStrings(b *wire.Buffer, ss []string) {
	b.PutUvarint(uint64(len(ss)))
	for _, s := range ss {
		b.PutString(s)
	}
}

func getStrings(d *wire.Decoder) []string {
	n := d.Count(1)
	if n == 0 {
		return nil
	}
	ss := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ss = append(ss, d.String())
	}
	return ss
}

// GCounter is a grow-only counter: each segment holds the owner's
// monotonically non-decreasing contribution; the value is their sum.
type GCounter struct {
	obj Object
	own uint64
}

// NewGCounter binds a counter to the node's snapshot object.
func NewGCounter(obj Object) *GCounter { return &GCounter{obj: obj} }

// Add increments this node's contribution by delta.
func (c *GCounter) Add(delta uint64) error {
	c.own += delta
	return c.obj.Update(encodeUint(c.own))
}

// Value reads the counter (one SCAN).
func (c *GCounter) Value() (uint64, error) {
	snap, err := c.obj.Scan()
	if err != nil {
		return 0, err
	}
	var total uint64
	for i, seg := range snap {
		if seg == nil {
			continue
		}
		v, err := decodeUint(seg)
		if err != nil {
			return 0, fmt.Errorf("crdt: segment %d: %w", i, err)
		}
		total += v
	}
	return total, nil
}

// pnState is a PN-counter segment.
type pnState struct{ P, N uint64 }

// PNCounter supports increments and decrements (a pair of G-Counters).
type PNCounter struct {
	obj Object
	own pnState
}

// NewPNCounter binds a counter to the node's snapshot object.
func NewPNCounter(obj Object) *PNCounter { return &PNCounter{obj: obj} }

// Add adjusts this node's contribution by delta (which may be negative).
func (c *PNCounter) Add(delta int64) error {
	if delta >= 0 {
		c.own.P += uint64(delta)
	} else {
		c.own.N += uint64(-delta)
	}
	return c.obj.Update(encodePN(c.own))
}

// Value reads the counter (one SCAN).
func (c *PNCounter) Value() (int64, error) {
	snap, err := c.obj.Scan()
	if err != nil {
		return 0, err
	}
	var total int64
	for i, seg := range snap {
		if seg == nil {
			continue
		}
		v, err := decodePN(seg)
		if err != nil {
			return 0, fmt.Errorf("crdt: segment %d: %w", i, err)
		}
		total += int64(v.P) - int64(v.N)
	}
	return total, nil
}

// tpState is a 2P-set segment: the owner's added and removed elements.
type tpState struct {
	Added   []string
	Removed []string
}

// TwoPhaseSet is a set with add and remove, where a removed element can
// never be re-added (2P-set semantics). Each segment holds the owner's
// add- and tombstone-sets.
type TwoPhaseSet struct {
	obj     Object
	added   map[string]bool
	removed map[string]bool
}

// NewTwoPhaseSet binds a set to the node's snapshot object.
func NewTwoPhaseSet(obj Object) *TwoPhaseSet {
	return &TwoPhaseSet{obj: obj, added: make(map[string]bool), removed: make(map[string]bool)}
}

func (s *TwoPhaseSet) push() error {
	st := tpState{Added: keys(s.added), Removed: keys(s.removed)}
	return s.obj.Update(encodeTP(st))
}

// Add inserts e into the node's add-set.
func (s *TwoPhaseSet) Add(e string) error {
	s.added[e] = true
	return s.push()
}

// Remove tombstones e (any node may remove any element).
func (s *TwoPhaseSet) Remove(e string) error {
	s.removed[e] = true
	return s.push()
}

// Contains reads membership: added by someone and removed by no one.
func (s *TwoPhaseSet) Contains(e string) (bool, error) {
	elems, err := s.Elements()
	if err != nil {
		return false, err
	}
	for _, x := range elems {
		if x == e {
			return true, nil
		}
	}
	return false, nil
}

// Elements reads the set (one SCAN): union of add-sets minus union of
// tombstones, sorted.
func (s *TwoPhaseSet) Elements() ([]string, error) {
	snap, err := s.obj.Scan()
	if err != nil {
		return nil, err
	}
	added := make(map[string]bool)
	removed := make(map[string]bool)
	for i, seg := range snap {
		if seg == nil {
			continue
		}
		st, err := decodeTP(seg)
		if err != nil {
			return nil, fmt.Errorf("crdt: segment %d: %w", i, err)
		}
		for _, e := range st.Added {
			added[e] = true
		}
		for _, e := range st.Removed {
			removed[e] = true
		}
	}
	var out []string
	for e := range added {
		if !removed[e] {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out, nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
