package crdt

import (
	"fmt"

	"mpsnap/internal/wire"
)

// lwwState is an LWW-register segment: the owner's latest write with its
// logical timestamp.
type lwwState struct {
	Clock int64
	Val   []byte
	Unset bool
}

func encodeLWW(st lwwState) []byte {
	var b wire.Buffer
	b.PutVarint(st.Clock)
	b.PutBytes(st.Val)
	b.PutBool(st.Unset)
	return b.Bytes()
}

func decodeLWW(b []byte) (lwwState, error) {
	d := wire.NewDecoder(b)
	st := lwwState{Clock: d.Varint(), Val: d.Bytes(), Unset: d.Bool()}
	return st, d.Err()
}

// LWWRegister is a last-writer-wins register: each node's segment holds
// its most recent write stamped with a logical clock; reads take the
// maximum (clock, node) pair over a SCAN. Over an atomic snapshot the
// register is linearizable: a Set scans first, so its stamp dominates
// everything that completed before it.
type LWWRegister struct {
	obj    Object
	id     int
	clock  int64
	ownVal []byte
	ownSet bool
}

// NewLWWRegister binds a register to the node's snapshot object; id must
// be the node's ID.
func NewLWWRegister(obj Object, id int) *LWWRegister {
	return &LWWRegister{obj: obj, id: id}
}

// Set writes val (one SCAN to advance the clock + one UPDATE).
func (r *LWWRegister) Set(val []byte) error {
	_, maxClock, _, err := r.read()
	if err != nil {
		return err
	}
	if maxClock >= r.clock {
		r.clock = maxClock + 1
	} else {
		r.clock++
	}
	r.ownVal = append([]byte(nil), val...)
	r.ownSet = true
	return r.obj.Update(encodeLWW(lwwState{Clock: r.clock, Val: r.ownVal}))
}

// Get reads the register (one SCAN); ok is false while unwritten.
func (r *LWWRegister) Get() (val []byte, ok bool, err error) {
	val, _, ok, err = r.read()
	return val, ok, err
}

func (r *LWWRegister) read() (val []byte, maxClock int64, ok bool, err error) {
	snap, err := r.obj.Scan()
	if err != nil {
		return nil, 0, false, err
	}
	bestNode := -1
	for i, seg := range snap {
		if seg == nil {
			continue
		}
		st, err := decodeLWW(seg)
		if err != nil {
			return nil, 0, false, fmt.Errorf("crdt: lww segment %d: %w", i, err)
		}
		if st.Unset {
			continue
		}
		if st.Clock > maxClock || (st.Clock == maxClock && i > bestNode) {
			maxClock = st.Clock
			bestNode = i
			val = st.Val
			ok = true
		}
	}
	// This node's own completed write is authoritative if the snapshot
	// lags it.
	if r.ownSet && (r.clock > maxClock || (r.clock == maxClock && r.id > bestNode)) {
		maxClock = r.clock
		val = r.ownVal
		ok = true
	}
	return val, maxClock, ok, nil
}
