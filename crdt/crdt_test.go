package crdt_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/crdt"
)

// run executes per-node scripts over an EQ-ASO cluster and fails on error.
func run(t *testing.T, n, f int, seed int64, alg mpsnap.Algorithm, script func(i int, cl *mpsnap.Client)) {
	t.Helper()
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Algorithm: alg, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(cl *mpsnap.Client) { script(i, cl) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGCounterConverges(t *testing.T) {
	n := 5
	var final uint64
	run(t, n, 2, 1, mpsnap.EQASO, func(i int, cl *mpsnap.Client) {
		ctr := crdt.NewGCounter(cl.Raw())
		for k := 0; k < 3; k++ {
			if err := ctr.Add(uint64(i + 1)); err != nil {
				t.Errorf("add: %v", err)
				return
			}
		}
		_ = cl.Sleep(20 * mpsnap.D) // quiesce
		v, err := ctr.Value()
		if err != nil {
			t.Errorf("value: %v", err)
			return
		}
		want := uint64(3 * (1 + 2 + 3 + 4 + 5))
		if v != want {
			t.Errorf("node %d sees %d, want %d", i, v, want)
		}
		final = v
	})
	if final == 0 {
		t.Fatal("no value read")
	}
}

func TestGCounterLinearizableReads(t *testing.T) {
	// A counter read after one's own Add must include it; reads never
	// regress on the same node (atomicity of the underlying ASO).
	run(t, 4, 1, 7, mpsnap.EQASO, func(i int, cl *mpsnap.Client) {
		ctr := crdt.NewGCounter(cl.Raw())
		var own, last uint64
		for k := 0; k < 4; k++ {
			if err := ctr.Add(1); err != nil {
				return
			}
			own++
			v, err := ctr.Value()
			if err != nil {
				return
			}
			if v < own {
				t.Errorf("node %d read %d < own contribution %d", i, v, own)
			}
			if v < last {
				t.Errorf("node %d read regressed: %d after %d", i, v, last)
			}
			last = v
		}
	})
}

func TestPNCounter(t *testing.T) {
	run(t, 3, 1, 3, mpsnap.EQASO, func(i int, cl *mpsnap.Client) {
		ctr := crdt.NewPNCounter(cl.Raw())
		if err := ctr.Add(10); err != nil {
			t.Errorf("add: %v", err)
			return
		}
		if err := ctr.Add(-4); err != nil {
			t.Errorf("sub: %v", err)
			return
		}
		_ = cl.Sleep(20 * mpsnap.D)
		v, err := ctr.Value()
		if err != nil {
			t.Errorf("value: %v", err)
			return
		}
		if v != 18 { // 3 nodes × (10-4)
			t.Errorf("node %d sees %d, want 18", i, v)
		}
	})
}

func TestTwoPhaseSet(t *testing.T) {
	run(t, 3, 1, 5, mpsnap.EQASO, func(i int, cl *mpsnap.Client) {
		set := crdt.NewTwoPhaseSet(cl.Raw())
		if err := set.Add(fmt.Sprintf("e%d", i)); err != nil {
			t.Errorf("add: %v", err)
			return
		}
		if i == 0 {
			if err := set.Remove("e1"); err != nil { // node 0 removes node 1's element
				t.Errorf("remove: %v", err)
				return
			}
		}
		_ = cl.Sleep(20 * mpsnap.D)
		elems, err := set.Elements()
		if err != nil {
			t.Errorf("elements: %v", err)
			return
		}
		if !reflect.DeepEqual(elems, []string{"e0", "e2"}) {
			t.Errorf("node %d sees %v, want [e0 e2]", i, elems)
		}
		ok, err := set.Contains("e1")
		if err != nil || ok {
			t.Errorf("e1 should be tombstoned (ok=%v err=%v)", ok, err)
		}
	})
}

func TestGCounterRandomConvergence(t *testing.T) {
	// Property: after quiescence, all nodes read the same total = sum of
	// all increments, for random increment patterns and crash-free runs.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		incs := make([][]uint64, n)
		var want uint64
		for i := range incs {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				d := uint64(rng.Intn(9) + 1)
				incs[i] = append(incs[i], d)
				want += d
			}
		}
		c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: (n - 1) / 2, Seed: seed})
		if err != nil {
			return false
		}
		ok := true
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(cl *mpsnap.Client) {
				ctr := crdt.NewGCounter(cl.Raw())
				for _, d := range incs[i] {
					if err := ctr.Add(d); err != nil {
						ok = false
						return
					}
				}
				_ = cl.Sleep(30 * mpsnap.D)
				v, err := ctr.Value()
				if err != nil || v != want {
					ok = false
				}
			})
		}
		if err := c.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestCRDTOverSSO(t *testing.T) {
	// Over the SSO, reads are local and sequentially consistent: a node
	// always sees at least its own contribution.
	run(t, 5, 2, 9, mpsnap.SSOFast, func(i int, cl *mpsnap.Client) {
		ctr := crdt.NewGCounter(cl.Raw())
		var own uint64
		for k := 0; k < 3; k++ {
			if err := ctr.Add(2); err != nil {
				return
			}
			own += 2
			v, err := ctr.Value()
			if err != nil {
				return
			}
			if v < own {
				t.Errorf("node %d SSO read %d < own %d", i, v, own)
			}
		}
	})
}
