package crdt_test

import (
	"fmt"

	"mpsnap"
	"mpsnap/crdt"
)

// A grow-only counter over an atomic snapshot: every node contributes to
// its own segment; Value sums a scan. Reads are linearizable.
func Example() {
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 2})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			ctr := crdt.NewGCounter(c.Raw())
			if err := ctr.Add(uint64(i + 1)); err != nil {
				return
			}
			_ = c.Sleep(20 * mpsnap.D) // quiesce
			if i == 0 {
				v, _ := ctr.Value()
				fmt.Printf("counter = %d\n", v)
			}
		})
	}
	if err := cluster.Run(); err != nil {
		panic(err)
	}
	// Output:
	// counter = 6
}
