package crdt

import (
	"fmt"
	"sort"

	"mpsnap/internal/wire"
)

// ORTag uniquely identifies one Add operation (observed-remove sets tag
// every insertion so removals only affect observed insertions).
type ORTag struct {
	Node int
	Ctr  int
}

// orState is an OR-set segment: the owner's tagged insertions and the
// tags it has removed (of any node's insertions).
type orState struct {
	Adds    map[string][]ORTag
	Removes []ORTag
}

// encodeOR serializes an OR-set segment deterministically: Adds entries
// are emitted in sorted element order (Removes is sorted by push).
func encodeOR(st orState) []byte {
	var b wire.Buffer
	elems := make([]string, 0, len(st.Adds))
	for e := range st.Adds {
		elems = append(elems, e)
	}
	sort.Strings(elems)
	b.PutUvarint(uint64(len(elems)))
	for _, e := range elems {
		b.PutString(e)
		putTags(&b, st.Adds[e])
	}
	putTags(&b, st.Removes)
	return b.Bytes()
}

func decodeOR(b []byte) (orState, error) {
	d := wire.NewDecoder(b)
	st := orState{Adds: make(map[string][]ORTag)}
	for i, n := 0, d.Count(2); i < n && d.Err() == nil; i++ {
		e := d.String()
		st.Adds[e] = getTags(d)
	}
	st.Removes = getTags(d)
	return st, d.Err()
}

func putTags(b *wire.Buffer, tags []ORTag) {
	b.PutUvarint(uint64(len(tags)))
	for _, tag := range tags {
		b.PutInt(tag.Node)
		b.PutInt(tag.Ctr)
	}
}

func getTags(d *wire.Decoder) []ORTag {
	n := d.Count(2)
	if n == 0 {
		return nil
	}
	tags := make([]ORTag, 0, n)
	for i := 0; i < n; i++ {
		tags = append(tags, ORTag{Node: d.Int(), Ctr: d.Int()})
	}
	return tags
}

// ORSet is an observed-remove set with add-wins semantics: removing an
// element cancels only the insertions the remover has observed, so a
// concurrent re-Add survives. Each segment carries the owner's insertions
// and removals.
type ORSet struct {
	obj     Object
	id      int
	ctr     int
	adds    map[string][]ORTag
	removes map[ORTag]bool
}

// NewORSet binds an OR-set to the node's snapshot object; id must be the
// node's ID.
func NewORSet(obj Object, id int) *ORSet {
	return &ORSet{obj: obj, id: id, adds: make(map[string][]ORTag), removes: make(map[ORTag]bool)}
}

func (s *ORSet) push() error {
	st := orState{Adds: make(map[string][]ORTag, len(s.adds))}
	for e, tags := range s.adds {
		st.Adds[e] = append([]ORTag(nil), tags...)
	}
	for tag := range s.removes {
		st.Removes = append(st.Removes, tag)
	}
	sort.Slice(st.Removes, func(i, j int) bool {
		if st.Removes[i].Node != st.Removes[j].Node {
			return st.Removes[i].Node < st.Removes[j].Node
		}
		return st.Removes[i].Ctr < st.Removes[j].Ctr
	})
	return s.obj.Update(encodeOR(st))
}

// Add inserts e with a fresh tag (one UPDATE).
func (s *ORSet) Add(e string) error {
	s.ctr++
	s.adds[e] = append(s.adds[e], ORTag{Node: s.id, Ctr: s.ctr})
	return s.push()
}

// Remove deletes e by tombstoning every currently observable insertion of
// it (one SCAN + one UPDATE). A concurrent Add with an unobserved tag
// survives — add-wins.
func (s *ORSet) Remove(e string) error {
	visible, err := s.collect()
	if err != nil {
		return err
	}
	for _, tag := range visible[e] {
		s.removes[tag] = true
	}
	return s.push()
}

// collect scans and returns, per element, the insertion tags not yet
// removed by anyone.
func (s *ORSet) collect() (map[string][]ORTag, error) {
	snap, err := s.obj.Scan()
	if err != nil {
		return nil, err
	}
	removed := make(map[ORTag]bool)
	states := make([]orState, 0, len(snap))
	for i, seg := range snap {
		if seg == nil {
			continue
		}
		st, err := decodeOR(seg)
		if err != nil {
			return nil, fmt.Errorf("crdt: orset segment %d: %w", i, err)
		}
		states = append(states, st)
		for _, tag := range st.Removes {
			removed[tag] = true
		}
	}
	// The local state is authoritative for this node's own segment (the
	// snapshot can lag but never lead completed local ops).
	for tag := range s.removes {
		removed[tag] = true
	}
	visible := make(map[string][]ORTag)
	add := func(e string, tags []ORTag) {
		for _, tag := range tags {
			if !removed[tag] {
				visible[e] = append(visible[e], tag)
			}
		}
	}
	for _, st := range states {
		for e, tags := range st.Adds {
			add(e, tags)
		}
	}
	for e, tags := range s.adds {
		add(e, tags)
	}
	// Deduplicate tags contributed twice (own segment + local copy).
	for e, tags := range visible {
		seen := make(map[ORTag]bool, len(tags))
		out := tags[:0]
		for _, tag := range tags {
			if !seen[tag] {
				seen[tag] = true
				out = append(out, tag)
			}
		}
		visible[e] = out
	}
	return visible, nil
}

// Elements reads the set (one SCAN), sorted.
func (s *ORSet) Elements() ([]string, error) {
	visible, err := s.collect()
	if err != nil {
		return nil, err
	}
	var out []string
	for e, tags := range visible {
		if len(tags) > 0 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Contains reads membership of e (one SCAN).
func (s *ORSet) Contains(e string) (bool, error) {
	visible, err := s.collect()
	if err != nil {
		return false, err
	}
	return len(visible[e]) > 0, nil
}
