package crdt_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/crdt"
)

func TestORSetAddRemove(t *testing.T) {
	run(t, 3, 1, 21, mpsnap.EQASO, func(i int, cl *mpsnap.Client) {
		set := crdt.NewORSet(cl.Raw(), i)
		if err := set.Add(fmt.Sprintf("e%d", i)); err != nil {
			t.Errorf("add: %v", err)
			return
		}
		_ = cl.Sleep(20 * mpsnap.D)
		if i == 0 {
			if err := set.Remove("e1"); err != nil {
				t.Errorf("remove: %v", err)
				return
			}
		}
		_ = cl.Sleep(20 * mpsnap.D)
		elems, err := set.Elements()
		if err != nil {
			t.Errorf("elements: %v", err)
			return
		}
		if !reflect.DeepEqual(elems, []string{"e0", "e2"}) {
			t.Errorf("node %d sees %v, want [e0 e2]", i, elems)
		}
	})
}

func TestORSetReAddAfterRemove(t *testing.T) {
	// Unlike the 2P-set, the OR-set allows re-adding a removed element:
	// the re-Add carries a fresh tag the removal never observed.
	run(t, 3, 1, 22, mpsnap.EQASO, func(i int, cl *mpsnap.Client) {
		if i != 0 {
			return
		}
		set := crdt.NewORSet(cl.Raw(), i)
		mustDo := func(name string, err error) bool {
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return false
			}
			return true
		}
		if !mustDo("add", set.Add("x")) ||
			!mustDo("remove", set.Remove("x")) {
			return
		}
		if ok, err := set.Contains("x"); err != nil || ok {
			t.Errorf("x should be removed (ok=%v err=%v)", ok, err)
			return
		}
		if !mustDo("re-add", set.Add("x")) {
			return
		}
		if ok, err := set.Contains("x"); err != nil || !ok {
			t.Errorf("x should be back after re-add (ok=%v err=%v)", ok, err)
		}
	})
}

func TestORSetUnobservedAddSurvives(t *testing.T) {
	// Add-wins: a removal only tombstones the insertion tags it
	// observed. Node 1's re-add carries a tag created strictly after
	// node 0's remove completed, so it must survive at every node.
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	removeDone := make(chan struct{}, 1)
	c.Client(0, func(cl *mpsnap.Client) {
		set := crdt.NewORSet(cl.Raw(), 0)
		if err := set.Add("x"); err != nil {
			return
		}
		_ = cl.Sleep(10 * mpsnap.D)
		if err := set.Remove("x"); err != nil {
			return
		}
		removeDone <- struct{}{}
	})
	c.Client(1, func(cl *mpsnap.Client) {
		set := crdt.NewORSet(cl.Raw(), 1)
		if err := waitChan(cl, removeDone); err != nil {
			return
		}
		if err := set.Add("x"); err != nil { // fresh, unobserved tag
			return
		}
		_ = cl.Sleep(30 * mpsnap.D)
		ok, err := set.Contains("x")
		if err != nil {
			t.Errorf("contains: %v", err)
			return
		}
		if !ok {
			t.Error("add-wins violated: unobserved re-add lost")
		}
	})
	c.Client(2, func(cl *mpsnap.Client) {
		set := crdt.NewORSet(cl.Raw(), 2)
		_ = cl.Sleep(60 * mpsnap.D)
		ok, err := set.Contains("x")
		if err != nil || !ok {
			t.Errorf("third party should see the re-added x (ok=%v err=%v)", ok, err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLWWRegisterBasics(t *testing.T) {
	run(t, 3, 1, 24, mpsnap.EQASO, func(i int, cl *mpsnap.Client) {
		if i != 0 {
			return
		}
		reg := crdt.NewLWWRegister(cl.Raw(), i)
		if _, ok, err := reg.Get(); err != nil || ok {
			t.Errorf("unwritten register: ok=%v err=%v", ok, err)
			return
		}
		if err := reg.Set([]byte("a")); err != nil {
			t.Errorf("set: %v", err)
			return
		}
		if err := reg.Set([]byte("b")); err != nil {
			t.Errorf("set: %v", err)
			return
		}
		v, ok, err := reg.Get()
		if err != nil || !ok || string(v) != "b" {
			t.Errorf("get = %q ok=%v err=%v, want b", v, ok, err)
		}
	})
}

func TestLWWRegisterCrossNode(t *testing.T) {
	// Sequential cross-node writes: the later writer's value wins
	// (its Set scans first, so its clock dominates).
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 1)
	c.Client(0, func(cl *mpsnap.Client) {
		reg := crdt.NewLWWRegister(cl.Raw(), 0)
		if err := reg.Set([]byte("first")); err != nil {
			t.Errorf("set: %v", err)
		}
		done <- struct{}{}
	})
	c.Client(1, func(cl *mpsnap.Client) {
		_ = waitChan(cl, done)
		reg := crdt.NewLWWRegister(cl.Raw(), 1)
		if err := reg.Set([]byte("second")); err != nil {
			t.Errorf("set: %v", err)
			return
		}
		v, ok, err := reg.Get()
		if err != nil || !ok || string(v) != "second" {
			t.Errorf("get = %q ok=%v err=%v, want second", v, ok, err)
		}
	})
	c.Client(2, func(cl *mpsnap.Client) {
		_ = cl.Sleep(40 * mpsnap.D)
		reg := crdt.NewLWWRegister(cl.Raw(), 2)
		v, ok, err := reg.Get()
		if err != nil || !ok || string(v) != "second" {
			t.Errorf("reader sees %q ok=%v err=%v, want second", v, ok, err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// waitChan polls a channel from inside a client script without blocking
// the scheduler (sim procs must never block on raw Go channels).
func waitChan(cl *mpsnap.Client, ch chan struct{}) error {
	for len(ch) == 0 {
		if err := cl.Sleep(100); err != nil {
			return err
		}
	}
	return nil
}

// TestORSetConvergenceProperty: random concurrent Add/Remove traffic;
// after quiescence all nodes agree on the same element set.
func TestORSetConvergenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: (n - 1) / 2, Seed: seed})
		if err != nil {
			return false
		}
		results := make([][]string, n)
		ok := true
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(cl *mpsnap.Client) {
				rng := rand.New(rand.NewSource(seed*13 + int64(i)))
				set := crdt.NewORSet(cl.Raw(), i)
				for k := 0; k < 3; k++ {
					e := fmt.Sprintf("e%d", rng.Intn(4))
					var err error
					if rng.Intn(3) == 0 {
						err = set.Remove(e)
					} else {
						err = set.Add(e)
					}
					if err != nil {
						ok = false
						return
					}
					_ = cl.Sleep(mpsnap.Ticks(rng.Intn(2000)))
				}
				_ = cl.Sleep(60 * mpsnap.D)
				elems, err := set.Elements()
				if err != nil {
					ok = false
					return
				}
				results[i] = elems
			})
		}
		if err := c.Run(); err != nil {
			return false
		}
		if !ok {
			return false
		}
		for i := 1; i < n; i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Logf("seed %d: node 0 %v vs node %d %v", seed, results[0], i, results[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
