// Package gla implements generalized lattice agreement (Faleiro et al.,
// reference [23]) on the paper's equivalence-quorum framework — Section IV
// notes the framework "can be used to solve LA and generalized LA problems
// with a better amortized time complexity".
//
// In generalized lattice agreement every node receives a stream of input
// values and learns a growing sequence of output views such that:
//
//   - Validity: outputs contain only proposed values, and every value
//     proposed by a correct node is eventually in every correct node's
//     output.
//   - Consistency: any two outputs, at any two nodes, at any two times,
//     are comparable (one contains the other).
//   - Monotonicity: a node's outputs only grow.
//
// The implementation reuses the SSO machinery: Propose runs the EQ-ASO
// update path (value dissemination + lattice renewal, O(√k·D) worst case,
// amortized O(D)), and the learned view is the node's stored good-lattice
// view — good views are pairwise comparable (Lemma 2), which is exactly
// the consistency requirement. Learned is local and free, like SSO scans.
package gla

import (
	"fmt"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/sso"
)

// Value is one learned value with its proposer.
type Value struct {
	Proposer int
	Seq      int // 1-based per-proposer proposal index (by tag order)
	Payload  []byte
}

// Node is one generalized-lattice-agreement node.
type Node struct {
	rtm   rt.Runtime
	inner *sso.Node
}

// New creates the node; register it as the node's message handler (it
// implements rt.Handler).
func New(r rt.Runtime) *Node {
	return &Node{rtm: r, inner: sso.New(r)}
}

// HandleMessage implements rt.Handler.
func (nd *Node) HandleMessage(src int, m rt.Message) { nd.inner.HandleMessage(src, m) }

// Propose submits one input value. It returns once the value is reflected
// in the node's learned view (and hence propagated to an equivalence
// quorum).
func (nd *Node) Propose(payload []byte) error {
	return nd.inner.Update(payload)
}

// Learned returns the node's current output: every value it has learned,
// in deterministic (proposer, sequence) order. It is purely local.
func (nd *Node) Learned() []Value {
	view := nd.inner.StoredView()
	out := make([]Value, 0, view.Len())
	seqs := make(map[int]int)
	view.Each(func(v core.Value) { // views are sorted by (tag, writer)
		seqs[v.TS.Writer]++
		out = append(out, Value{Proposer: v.TS.Writer, Seq: seqs[v.TS.Writer], Payload: v.Payload})
	})
	return out
}

// LearnedView returns the raw view (used by tests asserting Lemma 2's
// comparability across nodes).
func (nd *Node) LearnedView() core.View { return nd.inner.StoredView() }

func (nd *Node) String() string {
	return fmt.Sprintf("gla.Node(node %d, learned %d values)", nd.rtm.ID(), nd.inner.StoredView().Len())
}
