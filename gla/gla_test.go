package gla_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap/gla"
	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// deploy builds a GLA cluster over the simulator.
func deploy(n, f int, seed int64) (*sim.World, []*gla.Node) {
	w := sim.New(sim.Config{N: n, F: f, Seed: seed})
	nodes := make([]*gla.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = gla.New(w.Runtime(i))
		w.SetHandler(i, nodes[i])
	}
	return w, nodes
}

func TestProposeAndLearn(t *testing.T) {
	n := 5
	w, nodes := deploy(n, 2, 1)
	for i := 0; i < n; i++ {
		i := i
		w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
			for k := 1; k <= 3; k++ {
				if err := nodes[i].Propose([]byte(fmt.Sprintf("x%d-%d", i, k))); err != nil {
					t.Errorf("propose: %v", err)
					return
				}
			}
			// Quiesce, then everyone must have learned everything.
			_ = p.Sleep(40 * rt.TicksPerD)
			learned := nodes[i].Learned()
			if len(learned) != 3*n {
				t.Errorf("node %d learned %d values, want %d", i, len(learned), 3*n)
				return
			}
			// Deterministic order and per-proposer sequences.
			for j := 1; j < len(learned); j++ {
				a, b := learned[j-1], learned[j]
				if a.Proposer == b.Proposer && a.Seq >= b.Seq {
					t.Errorf("per-proposer order violated: %+v then %+v", a, b)
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnProposalsAlwaysLearned(t *testing.T) {
	// Validity, local side: after Propose returns, the proposal is in the
	// node's learned view (no waiting).
	w, nodes := deploy(4, 1, 3)
	w.GoNode("p0", 0, func(p *sim.Proc) {
		for k := 1; k <= 4; k++ {
			payload := []byte(fmt.Sprintf("v%d", k))
			if err := nodes[0].Propose(payload); err != nil {
				t.Errorf("propose: %v", err)
				return
			}
			found := false
			for _, v := range nodes[0].Learned() {
				if v.Proposer == 0 && string(v.Payload) == string(payload) {
					found = true
				}
			}
			if !found {
				t.Errorf("proposal %d missing from own learned view", k)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestConsistencyAcrossNodesAndTime: learned views, sampled at arbitrary
// times on arbitrary nodes, are pairwise comparable — generalized lattice
// agreement's consistency, with crashes.
func TestConsistencyAcrossNodesAndTime(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		f := (n - 1) / 2
		w, nodes := deploy(n, f, seed)
		k := rng.Intn(f + 1)
		for victim := 0; victim < k; victim++ {
			w.CrashAt(victim, rt.Ticks(rng.Intn(20000)))
		}
		var samples []core.View
		for i := 0; i < n; i++ {
			i := i
			w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(seed*37 + int64(i)))
				for k := 1; k <= 3; k++ {
					if err := nodes[i].Propose([]byte(fmt.Sprintf("x%d-%d", i, k))); err != nil {
						return
					}
					_ = p.Sleep(rt.Ticks(rng.Intn(3000)))
				}
			})
		}
		// A sampler polls random nodes' learned views over time.
		w.Go("sampler", func(p *sim.Proc) {
			for s := 0; s < 20; s++ {
				node := rng.Intn(n)
				samples = append(samples, nodes[node].LearnedView())
				_ = p.Sleep(rt.Ticks(1500))
			}
		})
		if err := w.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i := range samples {
			for j := i + 1; j < len(samples); j++ {
				if !samples[i].ComparableWith(samples[j]) {
					t.Logf("seed %d: samples %d and %d incomparable", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicity(t *testing.T) {
	w, nodes := deploy(4, 1, 9)
	for i := 0; i < 4; i++ {
		i := i
		w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
			_ = nodes[i].Propose([]byte(fmt.Sprintf("a%d", i)))
		})
	}
	w.Go("observer", func(p *sim.Proc) {
		var prev core.View
		for s := 0; s < 30; s++ {
			cur := nodes[1].LearnedView()
			if !prev.SubsetOf(cur) {
				t.Errorf("learned view regressed at sample %d", s)
				return
			}
			prev = cur
			_ = p.Sleep(500)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestValidityOnlyProposedValues(t *testing.T) {
	w, nodes := deploy(4, 1, 11)
	proposed := map[string]bool{}
	for i := 0; i < 4; i++ {
		i := i
		v := fmt.Sprintf("only-%d", i)
		proposed[v] = true
		w.GoNode(fmt.Sprintf("p%d", i), i, func(p *sim.Proc) {
			_ = nodes[i].Propose([]byte(v))
			_ = p.Sleep(30 * rt.TicksPerD)
			for _, l := range nodes[i].Learned() {
				if !proposed[string(l.Payload)] {
					t.Errorf("learned a never-proposed value %q", l.Payload)
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
