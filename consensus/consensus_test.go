package consensus_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/consensus"
)

// run executes one consensus instance over a fresh cluster and returns
// the decisions (-1 = did not decide, e.g. crashed).
func run(t *testing.T, seed int64, inputs []int, crashes int) []int {
	t.Helper()
	n := len(inputs)
	f := (n - 1) / 2
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < crashes; v++ {
		c.Crash(n-1-v, mpsnap.Ticks(30*mpsnap.D))
	}
	decisions := make([]int, n)
	for i := range decisions {
		decisions[i] = -1
	}
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(cl *mpsnap.Client) {
			cfg := consensus.Config{N: n, F: f, Rand: rand.New(rand.NewSource(seed*131 + int64(i)))}
			d, err := consensus.Propose(cl.Raw(), cfg, inputs[i])
			if err != nil {
				return // crashed node
			}
			decisions[i] = d
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return decisions
}

func checkAgreementValidity(t *testing.T, inputs, decisions []int, minDeciders int) {
	t.Helper()
	saw := map[int]bool{}
	for _, b := range inputs {
		saw[b] = true
	}
	first := -1
	deciders := 0
	for i, d := range decisions {
		if d < 0 {
			continue
		}
		deciders++
		if !saw[d] {
			t.Fatalf("node %d decided %d, which nobody proposed", i, d)
		}
		if first < 0 {
			first = d
		} else if d != first {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
	if deciders < minDeciders {
		t.Fatalf("only %d nodes decided: %v", deciders, decisions)
	}
}

func TestUnanimousInputsDecideImmediately(t *testing.T) {
	for _, bit := range []int{0, 1} {
		inputs := []int{bit, bit, bit, bit, bit}
		decisions := run(t, int64(bit)+1, inputs, 0)
		checkAgreementValidity(t, inputs, decisions, 5)
		for _, d := range decisions {
			if d != bit {
				t.Fatalf("unanimous %d must decide %d: %v", bit, bit, decisions)
			}
		}
	}
}

func TestMixedInputsAgree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		inputs := []int{0, 1, 0, 1, 1}
		decisions := run(t, seed, inputs, 0)
		checkAgreementValidity(t, inputs, decisions, 5)
	}
}

func TestAgreementUnderCrashes(t *testing.T) {
	inputs := []int{0, 1, 1, 0, 1, 0, 1}
	decisions := run(t, 9, inputs, 2)
	checkAgreementValidity(t, inputs, decisions, 5)
}

func TestAgreementProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		decisions := run(t, seed, inputs, 0)
		first := -1
		for _, d := range decisions {
			if d < 0 {
				return false // must terminate failure-free
			}
			if first < 0 {
				first = d
			} else if d != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		rng := rand.New(rand.NewSource(1))
		if _, err := consensus.Propose(cl.Raw(), consensus.Config{N: 4, F: 2, Rand: rng}, 0); err == nil {
			t.Error("n=4 f=2 must be rejected")
		}
		if _, err := consensus.Propose(cl.Raw(), consensus.Config{N: 3, F: 1}, 0); err == nil {
			t.Error("nil Rand must be rejected")
		}
		if _, err := consensus.Propose(cl.Raw(), consensus.Config{N: 3, F: 1, Rand: rng}, 7); err == nil {
			t.Error("non-bit input must be rejected")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
