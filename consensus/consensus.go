// Package consensus implements randomized binary consensus on top of an
// atomic snapshot object — the paper lists randomized consensus among the
// classic ASO applications (Section I, references [4], [5]).
//
// Deterministic asynchronous consensus is impossible with even one crash
// (FLP), so the protocol is randomized, in the style of Ben-Or adapted to
// snapshot segments: each phase has a report step and a proposal step.
//
//	phase r:
//	  write report b_r = current preference; scan until ≥ n-f phase-r
//	  reports are visible; propose v if a strict majority (> n/2) of ALL
//	  nodes reported v, else propose ⊥;
//	  write the proposal; scan until ≥ n-f phase-r proposals are visible;
//	  if ≥ f+1 proposals carry v → decide v;
//	  else if ≥ 1 proposal carries v → adopt v;
//	  else flip a fair local coin.
//
// Safety is deterministic: two non-⊥ proposals of one phase would each
// need > n/2 reports, and — because atomic scans are totally ordered by
// containment — the smaller report view is contained in the larger, so
// the majorities overlap within n nodes and the proposals coincide. A
// decision's f+1 proposals intersect every (n-f)-sized proposal view
// (f+1 + n-f > n), so every other node adopts the decided value and
// decides in the next phase. Termination holds with probability 1 (local
// coins eventually align); the expected phase count is exponential in n
// in the worst case — this package is an application demonstration, not a
// high-performance consensus.
package consensus

import (
	"errors"
	"fmt"
	"math/rand"

	"mpsnap/internal/wire"
)

// Object is the atomic snapshot object the protocol runs over
// (mpsnap.Object; must be an ASO).
type Object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

const noProposal = -1

// phaseRecord is a node's activity in one phase.
type phaseRecord struct {
	Report   int // 0 or 1
	Proposal int // 0, 1, or noProposal (⊥); -2 while unset
}

// state is one node's segment: its per-phase records and decision.
type state struct {
	Phases  []phaseRecord
	Decided int // -1 until decided
}

func encodeState(s state) []byte {
	var b wire.Buffer
	b.PutVarint(int64(s.Decided))
	b.PutUvarint(uint64(len(s.Phases)))
	for _, pr := range s.Phases {
		b.PutVarint(int64(pr.Report))
		b.PutVarint(int64(pr.Proposal))
	}
	return b.Bytes()
}

func decodeState(b []byte) (state, error) {
	d := wire.NewDecoder(b)
	s := state{Decided: d.Int()}
	n := d.Count(2)
	for i := 0; i < n; i++ {
		s.Phases = append(s.Phases, phaseRecord{Report: d.Int(), Proposal: d.Int()})
	}
	return s, d.Err()
}

// Config parameterizes one consensus instance.
type Config struct {
	// N nodes, resilience F (n > 2f).
	N, F int
	// MaxPhases aborts with an error after this many phases (0 = 10000);
	// a safety valve for tests, far above typical convergence.
	MaxPhases int
	// Rand drives the local coin; required (pass a seeded source for
	// reproducible simulations).
	Rand *rand.Rand
}

func (c Config) validate() error {
	if c.N <= 2*c.F || c.N <= 0 {
		return fmt.Errorf("consensus: need n > 2f, got n=%d f=%d", c.N, c.F)
	}
	if c.Rand == nil {
		return errors.New("consensus: Config.Rand is required")
	}
	return nil
}

// ErrTooManyPhases is returned when MaxPhases is exceeded.
var ErrTooManyPhases = errors.New("consensus: phase budget exceeded")

// Propose runs binary consensus for one node with input bit (0 or 1) and
// returns the decided bit. Every correct node must call Propose once.
func Propose(obj Object, cfg Config, bit int) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if bit != 0 && bit != 1 {
		return 0, fmt.Errorf("consensus: input %d is not a bit", bit)
	}
	maxPhases := cfg.MaxPhases
	if maxPhases == 0 {
		maxPhases = 10000
	}
	pref := bit
	st := state{Decided: -1}
	for phase := 0; phase < maxPhases; phase++ {
		// Report step.
		st.Phases = append(st.Phases, phaseRecord{Report: pref, Proposal: -2})
		if err := obj.Update(encodeState(st)); err != nil {
			return 0, err
		}
		reports, decided, err := collect(obj, cfg, phase, func(pr phaseRecord) (int, bool) {
			return pr.Report, true
		})
		if err != nil {
			return 0, err
		}
		if decided >= 0 {
			// Someone already decided: their f+1 proposals from an
			// earlier phase guarantee safety of adopting directly.
			return finish(obj, &st, decided)
		}
		proposal := noProposal
		for v := 0; v <= 1; v++ {
			if reports[v] > cfg.N/2 {
				proposal = v
			}
		}
		// Proposal step.
		st.Phases[phase].Proposal = proposal
		if err := obj.Update(encodeState(st)); err != nil {
			return 0, err
		}
		proposals, decided, err := collect(obj, cfg, phase, func(pr phaseRecord) (int, bool) {
			if pr.Proposal == -2 {
				return 0, false
			}
			return pr.Proposal, true
		})
		if err != nil {
			return 0, err
		}
		if decided >= 0 {
			return finish(obj, &st, decided)
		}
		switch {
		case proposals[0] >= cfg.F+1:
			return finish(obj, &st, 0)
		case proposals[1] >= cfg.F+1:
			return finish(obj, &st, 1)
		case proposals[0] > 0:
			pref = 0
		case proposals[1] > 0:
			pref = 1
		default:
			pref = cfg.Rand.Intn(2)
		}
	}
	return 0, ErrTooManyPhases
}

// finish publishes the decision (so laggards can short-circuit) and
// returns it.
func finish(obj Object, st *state, v int) (int, error) {
	st.Decided = v
	if err := obj.Update(encodeState(*st)); err != nil {
		return 0, err
	}
	return v, nil
}

// collect scans until at least n-f nodes expose a phase-`phase` entry
// accepted by get, returning per-value counts (index 0, 1; ⊥ ignored)
// and any published decision it noticed (-1 if none).
func collect(obj Object, cfg Config, phase int, get func(phaseRecord) (int, bool)) ([2]int, int, error) {
	for {
		snap, err := obj.Scan()
		if err != nil {
			return [2]int{}, -1, err
		}
		var counts [2]int
		seen := 0
		decided := -1
		for i, seg := range snap {
			if seg == nil {
				continue
			}
			st, err := decodeState(seg)
			if err != nil {
				return [2]int{}, -1, fmt.Errorf("consensus: segment %d: %w", i, err)
			}
			if st.Decided >= 0 {
				decided = st.Decided
			}
			if phase >= len(st.Phases) {
				continue
			}
			v, ok := get(st.Phases[phase])
			if !ok {
				continue
			}
			seen++
			if v == 0 || v == 1 {
				counts[v]++
			}
		}
		if decided >= 0 {
			return counts, decided, nil
		}
		if seen >= cfg.N-cfg.F {
			return counts, -1, nil
		}
	}
}
