module mpsnap

go 1.22
