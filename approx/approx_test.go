package approx_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/approx"
)

func TestRounds(t *testing.T) {
	cfg := approx.Config{Lo: 0, Hi: 8, Epsilon: 1, N: 3, F: 1}
	if got := cfg.Rounds(); got != 3 {
		t.Fatalf("rounds = %d, want 3", got)
	}
	cfg = approx.Config{Lo: 0, Hi: 0.5, Epsilon: 1, N: 3, F: 1}
	if got := cfg.Rounds(); got != 0 {
		t.Fatalf("degenerate range should need 0 rounds, got %d", got)
	}
}

func TestValidation(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		if _, err := approx.Agree(cl.Raw(), approx.Config{Lo: 0, Hi: 1, Epsilon: 0, N: 3, F: 1}, 0.5); err == nil {
			t.Error("epsilon 0 must be rejected")
		}
		if _, err := approx.Agree(cl.Raw(), approx.Config{Lo: 1, Hi: 0, Epsilon: 0.1, N: 3, F: 1}, 0.5); err == nil {
			t.Error("empty range must be rejected")
		}
		if _, err := approx.Agree(cl.Raw(), approx.Config{Lo: 0, Hi: 1, Epsilon: 0.1, N: 4, F: 2}, 0.5); err == nil {
			t.Error("n=4 f=2 must be rejected")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// runAgreement executes one instance over a fresh cluster; crashed
// entries in inputs (NaN) mean the node does not participate.
func runAgreement(t *testing.T, seed int64, inputs []float64, eps float64, crashes int) []float64 {
	t.Helper()
	n := len(inputs)
	f := (n - 1) / 2
	cfg := approx.Config{Lo: 0, Hi: 100, Epsilon: eps, N: n, F: f}
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Crashing nodes still participate until they die: crash LATE
	// deciders would block nothing (wait quorum n-f).
	for v := 0; v < crashes; v++ {
		c.Crash(n-1-v, mpsnap.Ticks(40*mpsnap.D))
	}
	decisions := make([]float64, n)
	for i := range decisions {
		decisions[i] = math.NaN()
	}
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(cl *mpsnap.Client) {
			d, err := approx.Agree(cl.Raw(), cfg, inputs[i])
			if err != nil {
				return // crashed
			}
			decisions[i] = d
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return decisions
}

func TestEpsilonAgreementAndValidity(t *testing.T) {
	inputs := []float64{10, 90, 30, 70, 50}
	eps := 0.5
	decisions := runAgreement(t, 1, inputs, eps, 0)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, d := range decisions {
		if math.IsNaN(d) {
			t.Fatalf("node %d did not decide", i)
		}
		if d < 10 || d > 90 {
			t.Fatalf("node %d decided %f outside the input range", i, d)
		}
		lo, hi = math.Min(lo, d), math.Max(hi, d)
	}
	if hi-lo > eps {
		t.Fatalf("decisions spread %f > ε=%f: %v", hi-lo, eps, decisions)
	}
}

func TestAgreementUnderCrashes(t *testing.T) {
	inputs := []float64{0, 100, 25, 75, 50, 60, 40}
	eps := 1.0
	decisions := runAgreement(t, 3, inputs, eps, 2)
	var decided []float64
	for _, d := range decisions {
		if !math.IsNaN(d) {
			decided = append(decided, d)
		}
	}
	if len(decided) < len(inputs)-2 {
		t.Fatalf("only %d nodes decided", len(decided))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, d := range decided {
		lo, hi = math.Min(lo, d), math.Max(hi, d)
	}
	if hi-lo > eps {
		t.Fatalf("decisions spread %f > ε=%f: %v", hi-lo, eps, decided)
	}
}

func TestAgreementProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		inputs := make([]float64, n)
		inLo, inHi := math.Inf(1), math.Inf(-1)
		for i := range inputs {
			inputs[i] = float64(rng.Intn(10000)) / 100
			inLo, inHi = math.Min(inLo, inputs[i]), math.Max(inHi, inputs[i])
		}
		eps := 0.25 + rng.Float64()
		decisions := runAgreement(t, seed, inputs, eps, 0)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, d := range decisions {
			if math.IsNaN(d) {
				return false
			}
			if d < inLo-1e-9 || d > inHi+1e-9 {
				return false
			}
			lo, hi = math.Min(lo, d), math.Max(hi, d)
		}
		return hi-lo <= eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestInputClamped(t *testing.T) {
	// Inputs outside the declared range are clamped, keeping validity.
	decisions := runAgreement(t, 5, []float64{-50, 150, 50}, 1.0, 0)
	for i, d := range decisions {
		if math.IsNaN(d) {
			t.Fatalf("node %d did not decide", i)
		}
		if d < 0 || d > 100 {
			t.Fatalf("node %d decided %f outside [0,100]", i, d)
		}
	}
}
