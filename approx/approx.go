// Package approx implements asynchronous approximate agreement on top of
// an atomic snapshot object — one of the paper's listed ASO applications
// ("Prior works also use ASO for solving approximate agreement",
// Section I, reference [13]).
//
// Every node starts with a real-valued input from a known range and must
// decide a value such that (i) all decisions are within ε of each other
// and (ii) every decision lies within the range of the inputs. With crash
// faults and asynchrony, exact agreement is impossible (FLP), but
// approximate agreement is solvable — and an *atomic* snapshot makes the
// classic midpoint iteration sound:
//
// In each round every node writes its current estimate and scans until it
// sees at least n-f round-r estimates. Because scans of an atomic
// snapshot are totally ordered by containment, the round-r views form a
// chain; every view contains the smallest view's values, so every
// midpoint lies within half the round's diameter of every other — the
// diameter at least halves each round. After R = ⌈log2((hi-lo)/ε)⌉ rounds
// all estimates are within ε.
//
// Run over the SSO instead, the nesting argument breaks; the package
// requires an atomic object.
package approx

import (
	"errors"
	"fmt"
	"math"

	"mpsnap/internal/wire"
)

// Object is the atomic snapshot object the protocol runs over
// (mpsnap.Object; must be an ASO, not an SSO).
type Object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

// state is one node's segment: its estimate per round.
type state struct {
	Vals []float64 // Vals[r] = the node's round-r estimate
}

func encodeState(s state) []byte {
	var b wire.Buffer
	b.PutUvarint(uint64(len(s.Vals)))
	for _, v := range s.Vals {
		b.PutFloat64(v)
	}
	return b.Bytes()
}

func decodeState(b []byte) (state, error) {
	d := wire.NewDecoder(b)
	n := d.Count(8)
	var s state
	for i := 0; i < n; i++ {
		s.Vals = append(s.Vals, d.Float64())
	}
	return s, d.Err()
}

// Config parameterizes one agreement instance.
type Config struct {
	// Lo and Hi bound every node's input (agreed upon a priori, as is
	// standard for approximate agreement). Deciders stay within them.
	Lo, Hi float64
	// Epsilon is the agreement precision (> 0).
	Epsilon float64
	// N and F describe the cluster (n > 2f); F is the wait quorum's
	// slack: each round waits for n-f round-r estimates.
	N, F int
}

// Rounds returns the number of halving rounds the configuration needs.
func (c Config) Rounds() int {
	span := c.Hi - c.Lo
	if span <= c.Epsilon {
		return 0
	}
	return int(math.Ceil(math.Log2(span / c.Epsilon)))
}

func (c Config) validate() error {
	if c.Epsilon <= 0 {
		return errors.New("approx: epsilon must be > 0")
	}
	if c.Hi < c.Lo {
		return errors.New("approx: empty input range")
	}
	if c.N <= 2*c.F || c.N <= 0 {
		return fmt.Errorf("approx: need n > 2f, got n=%d f=%d", c.N, c.F)
	}
	return nil
}

// Agree runs the protocol for one node: value is this node's input
// (clamped into [Lo, Hi]). It returns the node's decision. Agree performs
// Rounds()+1 updates and a scan loop per round; every participating
// correct node must call Agree for the rounds to fill (at most one
// concurrent Agree per node).
func Agree(obj Object, cfg Config, value float64) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	v := math.Min(math.Max(value, cfg.Lo), cfg.Hi)
	st := state{Vals: []float64{v}}
	if err := obj.Update(encodeState(st)); err != nil {
		return 0, err
	}
	rounds := cfg.Rounds()
	for r := 0; r < rounds; r++ {
		lo, hi, err := collectRound(obj, cfg, r)
		if err != nil {
			return 0, err
		}
		v = (lo + hi) / 2
		st.Vals = append(st.Vals, v)
		if err := obj.Update(encodeState(st)); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// collectRound scans until at least n-f nodes expose a round-r estimate
// and returns the min and max of the estimates seen.
func collectRound(obj Object, cfg Config, r int) (lo, hi float64, err error) {
	for {
		snap, err := obj.Scan()
		if err != nil {
			return 0, 0, err
		}
		count := 0
		lo, hi = math.Inf(1), math.Inf(-1)
		for i, seg := range snap {
			if seg == nil {
				continue
			}
			st, err := decodeState(seg)
			if err != nil {
				return 0, 0, fmt.Errorf("approx: segment %d: %w", i, err)
			}
			if r < len(st.Vals) {
				count++
				lo = math.Min(lo, st.Vals[r])
				hi = math.Max(hi, st.Vals[r])
			}
		}
		if count >= cfg.N-cfg.F {
			return lo, hi, nil
		}
		// Not enough round-r estimates yet: the next scan reflects new
		// updates (each scan is a fresh quorum operation, so this loop
		// advances with the system rather than spinning locally).
	}
}
